// Resync cost gate (DESIGN.md §16): bytes on the wire to re-converge one
// restored switch, as a function of how far its durable watermark lags the
// controller's journal head. The escalation ladder promises:
//
//   lag == 0            -> empty confirmation session (a handful of bytes)
//   0 < lag <= horizon  -> delta session, bytes proportional to lag
//   lag  > horizon      -> full state transfer, bytes proportional to state
//
// The gate is the ladder's economic claim: an in-horizon delta must cost
// strictly fewer wire bytes than the full transfer it replaces. Delta cost
// grows with lag (22 bytes per journaled DipUpdate record) while full cost
// grows with state (8 + 6*dips per VIP record), so the lag grid scales with
// fleet size — lag in {0, V, 4V} for V VIPs — mirroring how an operator
// sizes the journal horizon against state size. The channel runs loss-free
// here (drop = reorder = 0) so every byte count is exact and deterministic;
// bytes are scraped from silkroad_ctrl_resync_bytes_total, the same series
// CI and the quickstart endpoints export.
#include <cstdio>

#include "bench_common.h"
#include "deploy/fleet.h"
#include "workload/update_gen.h"

using namespace silkroad;

namespace {

constexpr std::size_t kSwitches = 3;
constexpr std::size_t kDipsPerVip = 24;
constexpr std::size_t kWarmupUpdates = 4;
constexpr std::uint64_t kJournalCapacity = 64;

net::Endpoint vip_of(std::size_t v) {
  return {net::IpAddress::v4(0x14000001 + static_cast<std::uint32_t>(v)), 80};
}

std::vector<net::Endpoint> dips_of(std::size_t v) {
  std::vector<net::Endpoint> dips;
  for (std::size_t i = 0; i < kDipsPerVip; ++i) {
    dips.push_back(
        {net::IpAddress::v4(0x0A000000 +
                            static_cast<std::uint32_t>(v * 256 + i)),
         20});
  }
  return dips;
}

struct CaseResult {
  double bytes = 0;
  double chunks = 0;
  std::uint64_t delta_sessions = 0;
  std::uint64_t full_sessions = 0;
  std::uint64_t empty_sessions = 0;
  bool converged = false;
  bool caught_up = false;
};

/// One fail/lag/restore cycle: switch 0 goes down with a durable watermark,
/// misses `lag` journaled mutations, and is restored; the result carries the
/// wire bytes its single resync session cost.
CaseResult run_case(std::size_t vips, std::size_t lag) {
  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(8192);

  // Loss-free, jitter-free channel: one transmission per chunk, so the
  // resync byte counter reads exactly the session's wire size.
  fault::ControlChannel::Config channel;
  channel.base_delay = 200 * sim::kMicrosecond;
  channel.jitter = 0;
  channel.drop_probability = 0.0;
  channel.reorder_probability = 0.0;
  channel.retry_timeout = 1 * sim::kMillisecond;

  deploy::SyncConfig sync;
  sync.journal_capacity = kJournalCapacity;
  sync.chunk_entries = 16;
  // Checkpoint on every applied mutation so the durable watermark at the
  // moment of the crash equals everything the switch had applied.
  sync.checkpoint_every = 1;

  deploy::SilkRoadFleet fleet(sim, config, kSwitches, 0xFEE7ULL, channel,
                              sync);
  for (std::size_t v = 0; v < vips; ++v) fleet.add_vip(vip_of(v), dips_of(v));

  // Membership toggles: remove then re-add the tail DIP of each VIP in
  // rotation. Each toggle journals one mutation and keeps pool sizes stable.
  std::size_t issued = 0;
  std::vector<bool> remove_next(vips, true);
  const auto issue = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i, ++issued) {
      const std::size_t v = issued % vips;
      workload::DipUpdate update;
      update.vip = vip_of(v);
      update.dip = dips_of(v).back();
      update.action = remove_next[v] ? workload::UpdateAction::kRemoveDip
                                     : workload::UpdateAction::kAddDip;
      update.cause = workload::UpdateCause::kServiceUpgrade;
      remove_next[v] = !remove_next[v];
      fleet.request_update(update);
    }
  };

  issue(kWarmupUpdates);  // advance every watermark past the VIP configs
  sim.run();
  fleet.fail_switch(0);
  issue(lag);
  sim.run();
  fleet.restore_switch(0);
  sim.run();

  CaseResult result;
  const auto snap = fleet.metrics_snapshot();
  result.bytes =
      snap.value_of("silkroad_ctrl_resync_bytes_total", "switch=\"0\"");
  result.chunks =
      snap.value_of("silkroad_ctrl_resync_chunks_total", "switch=\"0\"");
  result.delta_sessions = fleet.delta_sessions();
  result.full_sessions = fleet.full_sessions();
  result.empty_sessions = fleet.empty_sessions();
  result.converged = fleet.converged();
  result.caught_up = fleet.applied_through(0) == fleet.journal_head();
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "resync cost — wire bytes to re-converge one restored switch vs lag",
      "incremental sync: in-horizon deltas must beat the full transfer");

  bool ok = true;
  for (const std::size_t vips : {std::size_t{2}, std::size_t{8}}) {
    const std::size_t lag_1x = vips;
    const std::size_t lag_4x = 4 * vips;
    const CaseResult empty = run_case(vips, 0);
    const CaseResult delta_1x = run_case(vips, lag_1x);
    const CaseResult delta_4x = run_case(vips, lag_4x);
    // One past the horizon: the journal has compacted past the watermark.
    const CaseResult full = run_case(vips, kJournalCapacity + 1);

    std::printf("\n--- %zu VIPs x %zu DIPs (journal horizon %llu) ---\n", vips,
                kDipsPerVip, static_cast<unsigned long long>(kJournalCapacity));
    std::printf("%-26s %12s %8s %10s\n", "case", "wire bytes", "chunks",
                "session");
    const auto row = [](const char* label, const CaseResult& r) {
      const char* kind = r.full_sessions ? "full"
                         : r.delta_sessions ? "delta"
                                            : "empty";
      std::printf("%-26s %12.0f %8.0f %10s\n", label, r.bytes, r.chunks, kind);
    };
    char label[64];
    row("lag 0 (confirmation)", empty);
    std::snprintf(label, sizeof(label), "lag %zu (1x VIPs)", lag_1x);
    row(label, delta_1x);
    std::snprintf(label, sizeof(label), "lag %zu (4x VIPs)", lag_4x);
    row(label, delta_4x);
    row("lag past horizon", full);

    // Ladder rungs must be what the lag says they are, and every restore
    // must land the switch at the journal head.
    ok &= empty.empty_sessions == 1 && delta_1x.delta_sessions == 1 &&
          delta_4x.delta_sessions == 1 && full.full_sessions == 1;
    for (const CaseResult* r : {&empty, &delta_1x, &delta_4x, &full}) {
      ok &= r->converged && r->caught_up && r->bytes > 0;
    }
    // The economic gate: every in-horizon session strictly beats the full
    // transfer, and cost is monotone in lag.
    ok &= empty.bytes < delta_1x.bytes && delta_1x.bytes < delta_4x.bytes &&
          delta_4x.bytes < full.bytes;

    const std::string suffix = "_vips" + std::to_string(vips);
    bench::headline("resync_bytes_empty" + suffix, empty.bytes,
                    "wire bytes, up-to-date restore (confirmation session)");
    bench::headline("resync_bytes_lag1x" + suffix, delta_1x.bytes,
                    "wire bytes, delta resync at lag = VIP count");
    bench::headline("resync_bytes_lag4x" + suffix, delta_4x.bytes,
                    "wire bytes, delta resync at lag = 4x VIP count");
    bench::headline("resync_bytes_full" + suffix, full.bytes,
                    "wire bytes, watermark past horizon (full transfer)");
    bench::headline("delta_over_full" + suffix, delta_4x.bytes / full.bytes,
                    "deepest in-horizon delta over full transfer (must be <1)");
  }

  bench::headline("delta_beats_full", ok ? 1.0 : 0.0,
                  "every in-horizon session cost < full transfer (must be 1)");
  bench::emit_headlines("resync_cost");

  if (!ok) {
    std::printf("\nFAIL: escalation ladder economics violated\n");
    return 1;
  }
  std::printf("\nall ladder rungs in order: empty < delta < full\n");
  return 0;
}
