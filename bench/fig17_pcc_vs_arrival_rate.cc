// Figure 17: PCC violations per minute vs new-connection arrival rate
// (scaling the PoP trace by 0.1x - 2x) at 10 updates/min.
#include "bench_common.h"
#include "core/silkroad_switch.h"
#include "lb/duet.h"
#include "lb/scenario.h"

using namespace silkroad;

namespace {

lb::ScenarioConfig make_scenario(double arrival_factor, double scale,
                                 std::uint64_t seed) {
  lb::ScenarioConfig config;
  config.horizon = 6 * sim::kMinute;
  config.seed = seed;
  const int vips = static_cast<int>(8 * scale);
  const double base_rate = 2000.0 * scale;
  sim::Rng seeder(seed);
  for (int v = 0; v < vips; ++v) {
    const net::Endpoint vip{net::IpAddress::v4(0x14000000 + static_cast<std::uint32_t>(v)), 80};
    config.vip_loads.push_back(
        {vip, base_rate * arrival_factor, workload::FlowProfile::hadoop(), false});
    std::vector<net::Endpoint> dips;
    for (int d = 0; d < 24; ++d) {
      dips.push_back({net::IpAddress::v4(0x0A000000 +
                                         static_cast<std::uint32_t>(v * 256 + d)),
                      20});
    }
    config.dip_pools.push_back(dips);
    workload::UpdateGenerator gen({.seed = seeder.next()}, vip,
                                  config.dip_pools.back());
    auto updates = gen.generate(10.0 / vips, config.horizon);
    config.updates.insert(config.updates.end(), updates.begin(), updates.end());
  }
  return config;
}

}  // namespace

int main() {
  const double scale = bench::scale_factor();
  bench::print_header(
      "Figure 17 — PCC violations vs connection arrival rate (10 upd/min)",
      "SilkRoad (256-B TransitTable): 0 violations at every intensity; "
      "Duet and SilkRoad-w/o-TransitTable grow with arrival rate");
  std::printf("scale factor %.2f\n\n", scale);
  std::printf("%-14s %12s | %16s %22s %16s\n", "arrival x", "flows",
              "Duet viol/min", "SilkRoad-noTT viol/min", "SilkRoad viol/min");
  for (const double factor : {0.1, 0.5, 1.0, 1.5, 2.0}) {
    double duet_v = 0, nott_v = 0, sr_v = 0;
    std::uint64_t flows = 0;
    {
      sim::Simulator sim;
      lb::DuetLoadBalancer duet(
          sim, {.policy = lb::DuetLoadBalancer::MigratePolicy::kPeriodic,
                .migrate_period = 10 * sim::kMinute});
      lb::Scenario s(sim, duet, make_scenario(factor, scale, 71));
      const auto st = s.run();
      duet_v = st.violations_per_minute;
      flows = st.flows;
    }
    for (const bool transit : {false, true}) {
      sim::Simulator sim;
      core::SilkRoadSwitch::Config config;
      config.conn_table = core::SilkRoadSwitch::conn_table_for(400'000);
      config.learning = {.capacity = 2048, .timeout = sim::kMillisecond};
      config.cpu = {.tasks_per_second = 200'000.0};
      config.use_transit_table = transit;
      core::SilkRoadSwitch sw(sim, config);
      lb::Scenario s(sim, sw, make_scenario(factor, scale, 71));
      (transit ? sr_v : nott_v) = s.run().violations_per_minute;
    }
    std::printf("%-14.1f %12llu | %16.2f %22.4f %16.4f\n", factor,
                static_cast<unsigned long long>(flows), duet_v, nott_v, sr_v);
    bench::headline("silkroad_violations_per_min_factor_" +
                        std::to_string(static_cast<int>(factor * 10)),
                    sr_v, "expected 0 at every arrival rate");
  }
  bench::emit_headlines("fig17_pcc_vs_arrival_rate");
  return 0;
}
