// §5.1-§5.2: pipeline placement feasibility — does SilkRoad fit alongside
// the baseline switch.p4 on a 32-stage PISA chip, and how does the stage
// footprint scale with the connection count? (The throughput claim follows:
// logic that places, runs at line rate.)
#include "bench_common.h"
#include "asic/pipeline.h"

using namespace silkroad;
using namespace silkroad::asic;

int main() {
  bench::print_header(
      "§5.2 — Pipeline placement: switch.p4 + silkroad.p4",
      "the prototype compiles SilkRoad on top of switch.p4 and fits up to "
      "10M connections in on-chip SRAM; added pipeline latency is tens of ns");

  const ChipModel chip;
  std::printf("\nchip: %d stages, %.1f MB SRAM, %.1f MB TCAM\n", chip.stages,
              chip.totals().sram_bytes / 1e6, chip.totals().tcam_bytes / 1e6);

  std::printf("\n-- baseline switch.p4 alone --\n");
  const auto base = PipelineProgram::baseline_switch_p4().place(chip);
  std::printf("%s", format_placement(base).c_str());

  std::printf("\n-- combined placement vs connection scale --\n");
  std::printf("%-16s %12s %14s %12s\n", "connections", "fits?",
              "stages used", "SRAM (MB)");
  for (const std::size_t conns :
       {std::size_t{1'000'000}, std::size_t{5'000'000}, std::size_t{10'000'000},
        std::size_t{12'000'000}, std::size_t{16'000'000}}) {
    auto combined = PipelineProgram::baseline_switch_p4();
    combined.merge(PipelineProgram::silkroad_p4(conns));
    const auto placement = combined.place(chip);
    std::printf("%-16zu %12s %14d %12.1f\n", conns,
                placement.fits ? "yes" : "NO", placement.stages_used,
                combined.total_resources().sram_bytes / 1e6);
  }
  std::printf("\n(paper: 10M fits; the capacity cliff just above it is the "
              "SRAM envelope, exactly the Table 1 story)\n");

  std::printf("\n-- combined placement detail at 10M connections --\n");
  auto combined = PipelineProgram::baseline_switch_p4();
  combined.merge(PipelineProgram::silkroad_p4(10'000'000));
  const auto detail = combined.place(chip);
  std::printf("%s", format_placement(detail).c_str());
  bench::headline("fits_10m_conns", detail.fits ? 1.0 : 0.0,
                  "paper: 10M connections fit on-chip");
  bench::headline("stages_used_10m", detail.stages_used);
  bench::headline("combined_sram_mb_10m",
                  combined.total_resources().sram_bytes / 1e6);
  bench::emit_headlines("pipeline_placement");
  return 0;
}
