// §5.2: ConnTable insertion throughput through the modeled control plane —
// learning filter batching + switch-CPU service rate — and the occupancy
// behaviour of the cuckoo search (moves per insert as the table fills).
#include <chrono>

#include "bench_common.h"
#include "asic/cuckoo_table.h"
#include "core/silkroad_switch.h"
#include "lb/scenario.h"

using namespace silkroad;

namespace {

net::FiveTuple make_flow(std::uint32_t client) {
  return net::FiveTuple{{net::IpAddress::v4(0x0B000000 + client), 1234},
                        {net::IpAddress::v4(0x14000001), 80},
                        net::Protocol::kTcp};
}

}  // namespace

int main() {
  bench::print_header(
      "§5.2 — Connection insertion: CPU rate model and cuckoo behaviour",
      "expected ~200K insertions/sec (hash computation dominates, cuckoo "
      "search second); occupancy can reach ~95% before failures");

  // (1) Wall-clock throughput of the cuckoo structure itself (the part the
  // switch CPU runs), at 85% standing occupancy.
  asic::CuckooConfig config;
  config.buckets_per_stage = 16384;
  asic::DigestCuckooTable table(config);
  const auto standing = static_cast<std::uint32_t>(table.capacity() * 0.85);
  for (std::uint32_t i = 0; i < standing; ++i) table.insert(make_flow(i), 1);
  const auto start = std::chrono::steady_clock::now();
  const std::uint32_t ops = 200'000;
  for (std::uint32_t i = 0; i < ops; ++i) {
    table.insert(make_flow(standing + i), 1);
    table.erase(make_flow(standing + i));
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("\ncuckoo insert+erase at 85%% occupancy: %.0fK pairs/sec "
              "(model CPU budget: 200K inserts/sec)\n",
              ops / secs / 1000.0);

  // (2) Moves per insert vs occupancy.
  std::printf("\n%-12s %16s %16s\n", "occupancy", "moves/insert",
              "failed inserts");
  for (const double target : {0.50, 0.80, 0.90, 0.95, 0.98}) {
    asic::CuckooConfig c2;
    c2.buckets_per_stage = 8192;
    asic::DigestCuckooTable t2(c2);
    const auto n = static_cast<std::uint32_t>(t2.capacity() * target);
    std::uint32_t attempted = 0;
    for (std::uint32_t i = 0; i < n; ++i, ++attempted) {
      t2.insert(make_flow(i), 1);
    }
    std::printf("%-12.2f %16.4f %16llu\n", target,
                static_cast<double>(t2.total_moves()) / attempted,
                static_cast<unsigned long long>(t2.failed_inserts()));
  }

  // (3) End-to-end simulated pipeline: at a 200K/s CPU, a burst of N new
  // connections drains in N/200K seconds; measure pending-time percentiles.
  sim::Simulator sim;
  core::SilkRoadSwitch::Config sw_config;
  sw_config.conn_table = core::SilkRoadSwitch::conn_table_for(100'000);
  sw_config.learning = {.capacity = 2048, .timeout = sim::kMillisecond};
  sw_config.cpu = {.tasks_per_second = 200'000.0};
  core::SilkRoadSwitch sw(sim, sw_config);
  const net::Endpoint vip{net::IpAddress::v4(0x14000001), 80};
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < 16; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  sw.add_vip(vip, dips);
  const std::uint32_t burst = 50'000;
  for (std::uint32_t i = 0; i < burst; ++i) {
    net::Packet p;
    p.flow = make_flow(1'000'000 + i);
    p.syn = true;
    p.size_bytes = 64;
    sw.process_packet(p);
  }
  sim.run();
  std::printf(
      "\nburst of %u new connections drained in %.3f simulated seconds "
      "(theoretical %.3f s at 200K/s)\n",
      burst, sim::to_seconds(sim.now()), burst / 200'000.0);
  std::printf("inserts completed: %llu, failures: %llu\n",
              static_cast<unsigned long long>(sw.stats().inserts),
              static_cast<unsigned long long>(sw.stats().insert_failures));
  // cuckoo_pairs_per_sec_k is wall-clock throughput of this machine —
  // printed above for context, deliberately NOT a headline (a baseline
  // would pin CI hardware speed, not the model; cf. span_overhead.cc).
  bench::headline("burst_drain_seconds", sim::to_seconds(sim.now()),
                  "theoretical 0.25 s for 50K at 200K/s");
  bench::headline("burst_insert_failures",
                  static_cast<double>(sw.stats().insert_failures));
  bench::emit_headlines("insertion_rate");
  return 0;
}
