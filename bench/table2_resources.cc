// Table 2: additional hardware resources SilkRoad consumes (1M connections,
// 16-bit digest, 6-bit version) normalized by the baseline switch.p4 usage.
#include "bench_common.h"
#include "asic/resources.h"

using namespace silkroad;

int main() {
  bench::print_header(
      "Table 2 — Additional H/W resources used by SilkRoad (1M entries)",
      "crossbar 37.53%, SRAM 27.92%, TCAM 0%, VLIW 18.89%, hash 34.17%, "
      "stateful ALUs 44.44%, PHV 0.98% — all relative to baseline switch.p4");

  const asic::SilkRoadLayout layout;  // 1M conns, paper defaults
  const auto usage = asic::silkroad_usage(layout);
  const auto pct = usage.percent_of(asic::baseline_switch_p4_usage());
  std::printf("\n%s\n", asic::format_resource_table(
                            pct, asic::paper_table2_reference()).c_str());

  std::printf("absolute SilkRoad additions: %.0f crossbar bits, %.1f MB SRAM, "
              "%.0f VLIW actions, %.0f hash bits, %.0f stateful ALUs, %.0f "
              "PHV bits\n",
              usage.match_crossbar_bits, usage.sram_bytes / 1e6,
              usage.vliw_actions, usage.hash_bits, usage.stateful_alus,
              usage.phv_bits);

  // Scale check: 10M connections still fit the chip (§5.2).
  asic::SilkRoadLayout big = layout;
  big.connections = 10'000'000;
  const auto big_usage = asic::silkroad_usage(big);
  const asic::ChipModel chip;
  std::printf(
      "\n10M connections: %.1f MB SRAM of %.1f MB chip total (%.1f%%) — "
      "fits, as the prototype confirmed\n",
      big_usage.sram_bytes / 1e6, chip.totals().sram_bytes / 1e6,
      100.0 * big_usage.sram_bytes / chip.totals().sram_bytes);
  bench::headline("silkroad_10m_sram_mb", big_usage.sram_bytes / 1e6);
  bench::headline("silkroad_10m_sram_share_pct",
                  100.0 * big_usage.sram_bytes / chip.totals().sram_bytes,
                  "fits the chip, as the prototype confirmed");
  bench::emit_headlines("table2_resources");
  return 0;
}
