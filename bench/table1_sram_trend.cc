// Table 1: SRAM size and switching capacity across ASIC generations, plus
// the connection capacity each generation gives SilkRoad.
#include "bench_common.h"
#include "asic/sram.h"
#include "core/memory_model.h"

using namespace silkroad;

int main() {
  bench::print_header(
      "Table 1 — Trend of SRAM size and switching capacity in ASICs",
      "2012: <1.6 Tbps, 10-20 MB; 2014: 3.2 Tbps, 30-60 MB; 2016: 6.4+ Tbps, "
      "50-100 MB");

  std::printf("\n%-46s %6s %10s %12s %22s\n", "generation", "year", "Tbps",
              "SRAM (MB)", "SilkRoad conns @50% SRAM");
  for (const auto& gen : asic::kAsicGenerations) {
    // Connections that fit if half the SRAM envelope (midpoint) goes to the
    // 28-bit ConnTable.
    const double sram_mb =
        (static_cast<double>(gen.sram_mb_low) + static_cast<double>(gen.sram_mb_high)) / 2;
    const double budget_bytes = sram_mb * 1e6 / 2;
    const double conns = budget_bytes / 3.5;  // 3.5 B per packed entry
    std::printf("%-46s %6d %10.1f %6zu-%-5zu %22.2gM\n", gen.name, gen.year,
                gen.capacity_tbps, gen.sram_mb_low, gen.sram_mb_high,
                conns / 1e6);
  }
  std::printf(
      "\nnaive ConnTable (IPv6, 10M conns) needs %zu MB — beyond every "
      "generation; SilkRoad needs %zu MB — inside the 2016 envelope\n",
      core::conn_table_bytes(10'000'000, core::naive_entry(true)) / 1'000'000,
      core::conn_table_bytes(10'000'000, core::digest_version_entry()) /
          1'000'000);
  bench::headline(
      "naive_conn_table_mb_10m_ipv6",
      static_cast<double>(
          core::conn_table_bytes(10'000'000, core::naive_entry(true))) /
          1e6);
  bench::headline(
      "silkroad_conn_table_mb_10m",
      static_cast<double>(
          core::conn_table_bytes(10'000'000, core::digest_version_entry())) /
          1e6,
      "inside the 2016 SRAM envelope");
  bench::emit_headlines("table1_sram_trend");
  return 0;
}
