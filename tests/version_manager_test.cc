#include <gtest/gtest.h>

#include "core/version_manager.h"

namespace silkroad::core {
namespace {

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 +
                                       static_cast<std::uint32_t>(i)),
                    20});
  }
  return dips;
}

net::FiveTuple make_flow(std::uint32_t client) {
  return net::FiveTuple{{net::IpAddress::v4(0x0B000000 + client), 1234},
                        vip_ep(),
                        net::Protocol::kTcp};
}

workload::DipUpdate remove_update(const net::Endpoint& dip) {
  return {0, vip_ep(), dip, workload::UpdateAction::kRemoveDip,
          workload::UpdateCause::kServiceUpgrade};
}

workload::DipUpdate add_update(const net::Endpoint& dip) {
  return {0, vip_ep(), dip, workload::UpdateAction::kAddDip,
          workload::UpdateCause::kServiceUpgrade};
}

VipVersionManager::Config test_config(bool reuse = true, unsigned bits = 6) {
  return {.version_bits = bits,
          .enable_reuse = reuse,
          .semantics = lb::PoolSemantics::kStableResilient};
}

TEST(VipVersionManager, InitialState) {
  VipVersionManager mgr(vip_ep(), make_dips(4), test_config());
  EXPECT_EQ(mgr.current_version(), 0u);
  EXPECT_EQ(mgr.active_versions(), 1u);
  EXPECT_EQ(mgr.version_capacity(), 64u);
  ASSERT_NE(mgr.pool(0), nullptr);
  EXPECT_EQ(mgr.pool(0)->live_count(), 4u);
  EXPECT_EQ(mgr.pool(1), nullptr);
  EXPECT_TRUE(mgr.select(0, make_flow(1)).has_value());
}

TEST(VipVersionManager, RemoveCreatesNewVersion) {
  VipVersionManager mgr(vip_ep(), make_dips(4), test_config());
  const auto staged = mgr.stage_update(remove_update(make_dips(4)[1]));
  ASSERT_TRUE(staged.has_value());
  EXPECT_FALSE(staged->reused);
  EXPECT_NE(staged->target_version, 0u);
  // Not yet committed: current still 0.
  EXPECT_EQ(mgr.current_version(), 0u);
  mgr.commit(staged->target_version);
  EXPECT_EQ(mgr.current_version(), staged->target_version);
  // Old version had no refs: it is destroyed and recycled.
  EXPECT_EQ(mgr.active_versions(), 1u);
  EXPECT_EQ(mgr.pool(0), nullptr);
  EXPECT_EQ(mgr.pool(staged->target_version)->live_count(), 3u);
}

TEST(VipVersionManager, ReferencedVersionSurvivesCommit) {
  VipVersionManager mgr(vip_ep(), make_dips(4), test_config());
  mgr.acquire(0);
  const auto staged = mgr.stage_update(remove_update(make_dips(4)[0]));
  mgr.commit(staged->target_version);
  EXPECT_EQ(mgr.active_versions(), 2u);
  ASSERT_NE(mgr.pool(0), nullptr);
  // Releasing the last ref destroys the non-current version.
  mgr.release(0);
  EXPECT_EQ(mgr.active_versions(), 1u);
  EXPECT_EQ(mgr.pool(0), nullptr);
}

TEST(VipVersionManager, CurrentVersionNeverDestroyedByRelease) {
  VipVersionManager mgr(vip_ep(), make_dips(2), test_config());
  mgr.acquire(0);
  mgr.release(0);
  EXPECT_NE(mgr.pool(0), nullptr);
  EXPECT_EQ(mgr.current_version(), 0u);
}

TEST(VipVersionManager, AddReusesVersionHoldingDownDip) {
  // Paper Fig. 7: V1={d1,d2}; d2 fails -> V2 created without it; adding d4
  // reuses V1 by substituting d2 -> d4 in place, and V1 becomes newest.
  VipVersionManager mgr(vip_ep(), make_dips(4), test_config());
  mgr.acquire(0);  // live connections pin version 0 (which still holds d2)
  const auto removed = mgr.stage_update(remove_update(make_dips(4)[2]));
  mgr.commit(removed->target_version);
  mgr.acquire(removed->target_version);

  const net::Endpoint fresh{net::IpAddress::v4(0x0A0000CC), 20};
  const auto added = mgr.stage_update(add_update(fresh));
  ASSERT_TRUE(added.has_value());
  EXPECT_TRUE(added->reused);
  EXPECT_EQ(added->target_version, 0u);  // the version holding the down DIP
  EXPECT_TRUE(mgr.pool(0)->contains_live(fresh));
  EXPECT_FALSE(mgr.pool(0)->contains_live(make_dips(4)[2]));
  EXPECT_EQ(mgr.versions_reused(), 1u);
  // Substitution must not disturb any other slot.
  EXPECT_EQ(mgr.pool(0)->slot_count(), 4u);
}

TEST(VipVersionManager, ReuseRequiresMatchingMembership) {
  // Two DIPs down at once: reusing a version that still contains the *other*
  // down DIP would hand new connections a dead server — it must be skipped.
  VipVersionManager mgr(vip_ep(), make_dips(4), test_config());
  mgr.acquire(0);
  const auto r1 = mgr.stage_update(remove_update(make_dips(4)[1]));
  mgr.commit(r1->target_version);
  mgr.acquire(r1->target_version);
  const auto r2 = mgr.stage_update(remove_update(make_dips(4)[2]));
  mgr.commit(r2->target_version);
  mgr.acquire(r2->target_version);
  // Re-add dip 1: version 0 contains BOTH down DIPs -> not reusable; the
  // r1-version lacks dip 1 entirely -> not reusable either... except r1's
  // pool = {0,2,3}: contains down dip 2, and {0,3}+... check membership:
  // desired current = {0,3}; r1 minus dip2 = {0,3} == desired -> reusable!
  const auto added = mgr.stage_update(add_update(make_dips(4)[1]));
  ASSERT_TRUE(added.has_value());
  EXPECT_TRUE(added->reused);
  EXPECT_EQ(added->target_version, r1->target_version);
  const auto members = mgr.pool(added->target_version)->members();
  // Must not contain the still-down dip 2.
  EXPECT_EQ(std::count(members.begin(), members.end(), make_dips(4)[2]), 0);
  EXPECT_EQ(std::count(members.begin(), members.end(), make_dips(4)[1]), 1);
}

TEST(VipVersionManager, NoReuseAllocatesFreshVersions) {
  VipVersionManager mgr(vip_ep(), make_dips(4), test_config(false));
  const auto removed = mgr.stage_update(remove_update(make_dips(4)[2]));
  mgr.commit(removed->target_version);
  mgr.acquire(removed->target_version);
  const auto added =
      mgr.stage_update(add_update({net::IpAddress::v4(0x0A0000CC), 20}));
  ASSERT_TRUE(added.has_value());
  EXPECT_FALSE(added->reused);
  EXPECT_NE(added->target_version, removed->target_version);
}

// Fig. 15 semantics: connections are long-lived relative to the update
// window, so every committed version stays referenced. Reuse halves (or
// better) the number of concurrently-live versions a rolling reboot needs.
std::size_t rolling_reboot_live_versions(bool reuse, int rounds) {
  VipVersionManager mgr(vip_ep(), make_dips(16),
                        test_config(reuse, /*bits=*/9));
  auto dips = make_dips(16);
  mgr.acquire(mgr.current_version());
  for (int round = 0; round < rounds; ++round) {
    const auto& victim = dips[static_cast<std::size_t>(round) % dips.size()];
    const auto removed = mgr.stage_update(remove_update(victim));
    EXPECT_TRUE(removed.has_value());
    mgr.commit(removed->target_version);
    mgr.acquire(removed->target_version);  // long-lived conns pin it
    const auto added = mgr.stage_update(add_update(victim));
    EXPECT_TRUE(added.has_value());
    mgr.commit(added->target_version);
    mgr.acquire(added->target_version);
  }
  return mgr.active_versions();
}

TEST(VipVersionManager, RollingRebootReuseHalvesLiveVersions) {
  const std::size_t with_reuse = rolling_reboot_live_versions(true, 50);
  const std::size_t without = rolling_reboot_live_versions(false, 50);
  // Without reuse: ~1 initial + 2 per round. With: 1 per round (the add
  // substitutes the dead slot of the remove's version).
  EXPECT_NEAR(static_cast<double>(without), 101.0, 2.0);
  EXPECT_LE(with_reuse, without / 2 + 2);
}

TEST(VipVersionManager, ReuseCounterAdvances) {
  VipVersionManager mgr(vip_ep(), make_dips(8), test_config());
  auto dips = make_dips(8);
  for (int round = 0; round < 10; ++round) {
    // Live connections pin the pre-remove version, keeping its pool (which
    // still holds the removed DIP) available as a reuse target.
    mgr.acquire(mgr.current_version());
    const auto removed = mgr.stage_update(remove_update(dips[0]));
    ASSERT_TRUE(removed.has_value());
    mgr.commit(removed->target_version);
    const auto added = mgr.stage_update(add_update(dips[0]));
    ASSERT_TRUE(added.has_value());
    EXPECT_TRUE(added->reused);
    mgr.commit(added->target_version);
  }
  EXPECT_GE(mgr.versions_reused(), 10u);
}

TEST(VipVersionManager, ExhaustionReportsAndEvictionCandidate) {
  // 2-bit versions: capacity 4. Hold references so versions cannot recycle.
  VipVersionManager mgr(vip_ep(), make_dips(8), test_config(false, 2));
  std::vector<std::uint32_t> held;
  for (int i = 0; i < 3; ++i) {
    const auto staged = mgr.stage_update(
        remove_update(make_dips(8)[static_cast<std::size_t>(i)]));
    ASSERT_TRUE(staged.has_value()) << i;
    mgr.acquire(mgr.current_version());
    held.push_back(mgr.current_version());
    mgr.commit(staged->target_version);
  }
  // All 4 versions now exist (3 held + current). Next update must fail.
  const auto staged = mgr.stage_update(remove_update(make_dips(8)[5]));
  EXPECT_FALSE(staged.has_value());
  EXPECT_EQ(mgr.exhaustions(), 1u);
  const auto victim = mgr.eviction_candidate();
  ASSERT_TRUE(victim.has_value());
  EXPECT_NE(*victim, mgr.current_version());
  mgr.force_destroy(*victim);
  EXPECT_TRUE(mgr.stage_update(remove_update(make_dips(8)[5])).has_value());
}

TEST(VipVersionManager, MarkDipDownTouchesAllVersions) {
  VipVersionManager mgr(vip_ep(), make_dips(4), test_config());
  mgr.acquire(0);
  const auto staged = mgr.stage_update(remove_update(make_dips(4)[0]));
  mgr.commit(staged->target_version);
  mgr.acquire(staged->target_version);
  // DIP 1 is live in both versions; failing it must touch both pools.
  EXPECT_EQ(mgr.mark_dip_down(make_dips(4)[1]), 2u);
  EXPECT_FALSE(mgr.pool(0)->contains_live(make_dips(4)[1]));
}

TEST(VipVersionManager, PoolTableBytesGrowWithVersions) {
  VipVersionManager mgr(vip_ep(), make_dips(10), test_config());
  const auto base = mgr.pool_table_bytes();
  mgr.acquire(0);
  const auto staged = mgr.stage_update(remove_update(make_dips(10)[0]));
  mgr.commit(staged->target_version);
  EXPECT_GT(mgr.pool_table_bytes(), base);
}

}  // namespace
}  // namespace silkroad::core
