#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "workload/cluster_model.h"
#include "workload/flow_gen.h"
#include "workload/update_gen.h"

namespace silkroad::workload {
namespace {

TEST(ClusterModel, PopulationCountsAndTypes) {
  const auto clusters = generate_population(PopulationConfig{});
  EXPECT_EQ(clusters.size(), 100u);
  int counts[3] = {0, 0, 0};
  for (const auto& c : clusters) ++counts[static_cast<int>(c.type)];
  EXPECT_EQ(counts[0], 34);  // PoP
  EXPECT_EQ(counts[1], 33);  // Frontend
  EXPECT_EQ(counts[2], 33);  // Backend
}

TEST(ClusterModel, Deterministic) {
  const auto a = generate_population(PopulationConfig{});
  const auto b = generate_population(PopulationConfig{});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].active_conns_per_tor_p99, b[i].active_conns_per_tor_p99);
    EXPECT_EQ(a[i].updates_per_min_p99, b[i].updates_per_min_p99);
  }
}

TEST(ClusterModel, Fig2UpdateFrequencyShape) {
  // Paper: 32% of clusters have >10 updates/min at the p99 minute, 3% >50.
  const auto clusters = generate_population(PopulationConfig{});
  int over10 = 0, over50 = 0;
  for (const auto& c : clusters) {
    if (c.updates_per_min_p99 > 10) ++over10;
    if (c.updates_per_min_p99 > 50) ++over50;
  }
  EXPECT_NEAR(over10, 32, 15);
  EXPECT_NEAR(over50, 3, 6);
}

TEST(ClusterModel, Fig6ActiveConnectionsShape) {
  // Paper: most loaded PoP/Backend clusters around 10M+ connections per ToR;
  // Frontends far smaller.
  const auto clusters = generate_population(PopulationConfig{});
  std::uint64_t pop_max = 0, backend_max = 0, frontend_max = 0;
  for (const auto& c : clusters) {
    auto& bucket = c.type == ClusterType::kPoP        ? pop_max
                   : c.type == ClusterType::kFrontend ? frontend_max
                                                      : backend_max;
    bucket = std::max(bucket, c.active_conns_per_tor_p99);
  }
  EXPECT_GT(pop_max, 5'000'000u);
  EXPECT_GT(backend_max, 5'000'000u);
  EXPECT_LT(frontend_max, 2'000'000u);
  EXPECT_LT(frontend_max, pop_max / 4);
}

TEST(ClusterModel, BackendsUpdateMoreThanFrontendsAtMedian) {
  // Paper: half of Backends have >16 updates in the p99 minute.
  const auto clusters = generate_population(PopulationConfig{});
  std::vector<double> backend_p99;
  for (const auto& c : clusters) {
    if (c.type == ClusterType::kBackend) {
      backend_p99.push_back(c.updates_per_min_p99);
    }
  }
  std::nth_element(backend_p99.begin(),
                   backend_p99.begin() + backend_p99.size() / 2,
                   backend_p99.end());
  EXPECT_GT(backend_p99[backend_p99.size() / 2], 8.0);
}

TEST(PopulationCdf, ProjectionsWork) {
  const auto clusters = generate_population(PopulationConfig{});
  const auto cdf = population_cdf(clusters, [](const ClusterSpec& c) {
    return static_cast<double>(c.active_conns_per_tor_p99);
  });
  EXPECT_GT(cdf.quantile(0.99), cdf.quantile(0.5));
}

// --- Update generator -----------------------------------------------------------

UpdateGenConfig test_update_config() {
  UpdateGenConfig config;
  config.seed = 99;
  return config;
}

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

TEST(UpdateGenerator, RateApproximatelyMatches) {
  UpdateGenerator gen(test_update_config(),
                      {net::IpAddress::v4(0x14000001), 80}, make_dips(100));
  const double rate = 20.0;
  const auto events = gen.generate(rate, sim::kHour);
  const double per_min = static_cast<double>(events.size()) / 60.0;
  EXPECT_NEAR(per_min, rate, rate * 0.30);
}

TEST(UpdateGenerator, EventsSortedWithinHorizon) {
  UpdateGenerator gen(test_update_config(),
                      {net::IpAddress::v4(0x14000001), 80}, make_dips(50));
  const auto events = gen.generate(10.0, 10 * sim::kMinute);
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].at, events[i - 1].at);
  }
  EXPECT_LT(events.back().at, 10 * sim::kMinute);
}

TEST(UpdateGenerator, CauseMixDominatedByUpgrades) {
  UpdateGenerator gen(test_update_config(),
                      {net::IpAddress::v4(0x14000001), 80}, make_dips(200));
  const auto events = gen.generate(60.0, sim::kHour);
  std::map<UpdateCause, int> counts;
  for (const auto& e : events) ++counts[e.cause];
  const double upgrade_share =
      static_cast<double>(counts[UpdateCause::kServiceUpgrade]) /
      static_cast<double>(events.size());
  // Fig. 3: 82.7% of add/removes stem from service upgrades.
  EXPECT_NEAR(upgrade_share, 0.827, 0.08);
}

TEST(UpdateGenerator, RemovalsPairWithLaterAdditions) {
  UpdateGenerator gen(test_update_config(),
                      {net::IpAddress::v4(0x14000001), 80}, make_dips(50));
  const auto events = gen.generate(30.0, sim::kHour);
  int removes = 0, adds = 0;
  for (const auto& e : events) {
    (e.action == UpdateAction::kRemoveDip ? removes : adds)++;
  }
  EXPECT_GT(removes, 0);
  EXPECT_GT(adds, 0);
  // Long-downtime re-adds fall past the horizon, so adds < removes, but the
  // bulk must return (median downtime is 3 min vs a 60-min horizon).
  EXPECT_GT(adds, removes / 2);
}

TEST(UpdateGenerator, DowntimeQuantilesMatchFig4) {
  UpdateGenConfig config = test_update_config();
  UpdateGenerator gen(config, {net::IpAddress::v4(0x14000001), 80},
                      make_dips(10));
  sim::Rng rng(1234);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const auto d = gen.sample_downtime(UpdateCause::kServiceUpgrade, rng);
    ASSERT_TRUE(d.has_value());
    samples.push_back(sim::to_seconds(*d));
  }
  std::sort(samples.begin(), samples.end());
  // Fig. 4 (upgrades): median 3 min, p99 100 min.
  EXPECT_NEAR(samples[samples.size() / 2], 180.0, 20.0);
  EXPECT_NEAR(samples[static_cast<std::size_t>(samples.size() * 0.99)], 6000.0,
              1500.0);
}

TEST(UpdateGenerator, NoDowntimeForProvisioningAndRemoval) {
  UpdateGenerator gen(test_update_config(),
                      {net::IpAddress::v4(0x14000001), 80}, make_dips(10));
  sim::Rng rng(1);
  EXPECT_FALSE(gen.sample_downtime(UpdateCause::kProvisioning, rng).has_value());
  EXPECT_FALSE(gen.sample_downtime(UpdateCause::kRemoval, rng).has_value());
}

// --- Flow generator -------------------------------------------------------------

TEST(FlowGenerator, ArrivalCountMatchesRate) {
  sim::Simulator sim;
  FlowGenerator gen(sim,
                    {{{net::IpAddress::v4(0x14000001), 80},
                      600.0,  // per minute
                      FlowProfile::hadoop(),
                      false}},
                    7);
  std::uint64_t starts = 0;
  gen.start(10 * sim::kMinute, [&](const Flow&) { ++starts; },
            [](const Flow&) {});
  sim.run();
  EXPECT_NEAR(static_cast<double>(starts), 6000.0, 500.0);
}

TEST(FlowGenerator, EndsAfterStartsAndDurationsPlausible) {
  sim::Simulator sim;
  FlowGenerator gen(sim,
                    {{{net::IpAddress::v4(0x14000001), 80},
                      300.0,
                      FlowProfile::hadoop(),
                      false}},
                    7);
  std::vector<double> durations;
  gen.start(
      5 * sim::kMinute, [](const Flow&) {},
      [&](const Flow& f) {
        durations.push_back(sim::to_seconds(f.end - f.start));
      });
  sim.run();
  ASSERT_GT(durations.size(), 100u);
  std::sort(durations.begin(), durations.end());
  // Hadoop profile: median ~10 s.
  EXPECT_NEAR(durations[durations.size() / 2], 10.0, 4.0);
}

TEST(FlowGenerator, RateModulationShapesArrivals) {
  sim::Simulator sim;
  FlowGenerator gen(sim,
                    {{{net::IpAddress::v4(0x14000001), 80},
                      1200.0,
                      FlowProfile::hadoop(),
                      false}},
                    7);
  // First half at 0.25x, second half at 2x: a crude diurnal valley/peak.
  gen.set_rate_modulation([](sim::Time t) {
    return t < 5 * sim::kMinute ? 0.25 : 2.0;
  });
  std::uint64_t first_half = 0, second_half = 0;
  gen.start(10 * sim::kMinute,
            [&](const Flow& f) {
              (f.start < 5 * sim::kMinute ? first_half : second_half)++;
            },
            [](const Flow&) {});
  sim.run();
  EXPECT_NEAR(static_cast<double>(first_half), 0.25 * 1200 * 5, 250);
  EXPECT_NEAR(static_cast<double>(second_half), 2.0 * 1200 * 5, 800);
  EXPECT_GT(second_half, first_half * 4);
}

TEST(FlowGenerator, ZeroModulationStopsStream) {
  sim::Simulator sim;
  FlowGenerator gen(sim,
                    {{{net::IpAddress::v4(0x14000001), 80},
                      600.0,
                      FlowProfile::hadoop(),
                      false}},
                    7);
  gen.set_rate_modulation([](sim::Time t) {
    return t < sim::kMinute ? 1.0 : 0.0;
  });
  std::uint64_t after_cutoff = 0;
  gen.start(10 * sim::kMinute,
            [&](const Flow& f) {
              if (f.start > sim::kMinute + sim::kSecond) ++after_cutoff;
            },
            [](const Flow&) {});
  sim.run();
  EXPECT_EQ(after_cutoff, 0u);
}

TEST(FlowGenerator, TuplesAreUniqueAndTargetVip) {
  sim::Simulator sim;
  const net::Endpoint vip{net::IpAddress::v4(0x14000001), 80};
  FlowGenerator gen(sim, {{vip, 1000.0, FlowProfile::hadoop(), false}}, 7);
  std::set<std::string> tuples;
  std::uint64_t starts = 0;
  gen.start(sim::kMinute,
            [&](const Flow& f) {
              ++starts;
              EXPECT_EQ(f.tuple.dst, vip);
              tuples.insert(f.tuple.to_string());
            },
            [](const Flow&) {});
  sim.run();
  EXPECT_EQ(tuples.size(), starts);
}

TEST(FlowGenerator, Ipv6Clients) {
  sim::Simulator sim;
  const net::Endpoint vip{net::IpAddress::v6(0x20010DB8'00000001ULL, 1), 80};
  FlowGenerator gen(sim, {{vip, 100.0, FlowProfile::cache(), true}}, 7);
  bool saw_v6 = false;
  gen.start(sim::kMinute,
            [&](const Flow& f) { saw_v6 |= f.tuple.src.ip.is_v6(); },
            [](const Flow&) {});
  sim.run();
  EXPECT_TRUE(saw_v6);
}

}  // namespace
}  // namespace silkroad::workload
