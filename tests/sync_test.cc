// Incremental state sync (DESIGN.md §16): journal/snapshot units, the
// escalation ladder's compaction edges, chunked resync over the lossy
// channel, and crash-consistent resume of an interrupted session.
#include <gtest/gtest.h>

#include <vector>

#include "deploy/fleet.h"
#include "deploy/journal.h"
#include "deploy/snapshot.h"
#include "fault/sync_wire.h"

namespace silkroad::deploy {
namespace {

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back(
        {net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

core::SilkRoadSwitch::Config small_config() {
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(8192);
  return config;
}

workload::DipUpdate add_of(const net::Endpoint& dip) {
  workload::DipUpdate update;
  update.vip = vip_ep();
  update.dip = dip;
  update.action = workload::UpdateAction::kAddDip;
  update.cause = workload::UpdateCause::kProvisioning;
  return update;
}

// --- MutationJournal --------------------------------------------------------

TEST(MutationJournal, PositionsAreMonotoneAndSuffixFollowsWatermark) {
  MutationJournal journal(8);
  const auto dips = make_dips(3);
  EXPECT_EQ(journal.head_pos(), 0u);
  EXPECT_TRUE(journal.covers(0));  // nothing appended: nothing missing
  EXPECT_EQ(journal.append(fault::VipConfig{vip_ep(), dips}), 1u);
  EXPECT_EQ(journal.append(add_of(dips[0])), 2u);
  EXPECT_EQ(journal.append(add_of(dips[1])), 3u);
  EXPECT_EQ(journal.head_pos(), 3u);
  EXPECT_EQ(journal.first_pos(), 1u);
  EXPECT_EQ(journal.size(), 3u);
  const auto suffix = journal.suffix_since(1);
  ASSERT_EQ(suffix.size(), 2u);
  EXPECT_EQ(suffix[0].pos, 2u);
  EXPECT_EQ(suffix[1].pos, 3u);
  EXPECT_TRUE(journal.suffix_since(3).empty());
  EXPECT_GT(journal.retained_wire_size(), 0u);
}

TEST(MutationJournal, CompactionDropsOldestAndBreaksCoverage) {
  MutationJournal journal(2);
  const auto dips = make_dips(4);
  for (int i = 0; i < 4; ++i) journal.append(add_of(dips[i]));
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.compacted(), 2u);
  EXPECT_EQ(journal.appended(), 4u);
  EXPECT_EQ(journal.first_pos(), 3u);
  // covers(w): every entry past w still retained — first_pos <= w + 1.
  EXPECT_FALSE(journal.covers(0));
  EXPECT_FALSE(journal.covers(1));
  EXPECT_TRUE(journal.covers(2));  // exactly at the horizon
  EXPECT_TRUE(journal.covers(4));
}

// --- SwitchSnapshot / SnapshotStore ----------------------------------------

TEST(SnapshotStore, CheckpointReplacesAndCountsWireBytes) {
  SnapshotStore store(2);
  EXPECT_TRUE(store.at(0).empty());
  EXPECT_EQ(store.at(0).wire_size(), 8u);  // just the watermark
  SwitchSnapshot snapshot;
  snapshot.watermark = 7;
  snapshot.vips.push_back({vip_ep(), make_dips(2)});
  // watermark (8) + vip endpoint (6) + count (2) + 2 members (12).
  EXPECT_EQ(snapshot.wire_size(), 28u);
  store.checkpoint(1, snapshot);
  EXPECT_EQ(store.at(1).watermark, 7u);
  EXPECT_EQ(store.checkpoints(), 1u);
  EXPECT_EQ(store.total_wire_size(), 8u + 28u);
  store.checkpoint(1, SwitchSnapshot{});
  EXPECT_TRUE(store.at(1).empty());
  EXPECT_EQ(store.checkpoints(), 2u);
}

// --- Watermarks under normal operation -------------------------------------

TEST(SilkRoadFleet, InOrderDeliveryAdvancesAppliedThroughWatermark) {
  sim::Simulator sim;
  SilkRoadFleet fleet(sim, small_config(), 2);
  const auto dips = make_dips(6);
  fleet.add_vip(vip_ep(), {dips[0], dips[1]});
  // Synchronous provisioning is replayed idempotently, not watermarked.
  EXPECT_EQ(fleet.applied_through(0), 0u);
  EXPECT_EQ(fleet.journal_head(), 1u);
  for (int i = 2; i < 5; ++i) fleet.request_update(add_of(dips[i]));
  sim.run();
  EXPECT_EQ(fleet.journal_head(), 4u);
  EXPECT_EQ(fleet.applied_through(0), 4u);
  EXPECT_EQ(fleet.applied_through(1), 4u);
  EXPECT_TRUE(fleet.converged());
  // The checkpoint cadence (default every 8 mutations) hasn't fired yet for
  // either switch; the snapshots still hold their construction state.
  EXPECT_EQ(fleet.sync_config().checkpoint_every, 8u);
}

// --- Compaction edges (escalation ladder) ----------------------------------

SyncConfig tight_sync() {
  SyncConfig sync;
  sync.journal_capacity = 4;
  sync.chunk_entries = 2;
  sync.checkpoint_every = 1;
  return sync;
}

TEST(SilkRoadFleet, WatermarkExactlyAtHorizonGetsDelta) {
  sim::Simulator sim;
  SilkRoadFleet fleet(sim, small_config(), 2, 0xFEE7ULL, {}, tight_sync());
  const auto dips = make_dips(10);
  fleet.add_vip(vip_ep(), {dips[0], dips[1], dips[2], dips[3]});  // pos 1
  fleet.request_update(add_of(dips[4]));                          // pos 2
  sim.run();
  ASSERT_EQ(fleet.applied_through(0), 2u);
  fleet.fail_switch(0);
  // Four mutations while down: positions 3..6. Capacity 4 retains exactly
  // 3..6, so first_pos == watermark + 1 — the delta barely survives.
  for (int i = 5; i < 9; ++i) fleet.request_update(add_of(dips[i]));
  sim.run();
  EXPECT_EQ(fleet.journal_compacted(), 2u);
  fleet.restore_switch(0);
  sim.run();
  EXPECT_EQ(fleet.delta_sessions(), 1u);
  EXPECT_EQ(fleet.full_sessions(), 0u);
  EXPECT_EQ(fleet.empty_sessions(), 0u);
  // Four journal records at two per chunk: exactly two chunks.
  EXPECT_EQ(fleet.ctrl_resync_chunks(), 2u);
  EXPECT_EQ(fleet.applied_through(0), 6u);
  EXPECT_EQ(fleet.live_count(), 2u);
  EXPECT_TRUE(fleet.converged());
  EXPECT_TRUE(fleet.spans().audit_complete().empty());
}

TEST(SilkRoadFleet, WatermarkOnePastHorizonEscalatesToFullTransfer) {
  sim::Simulator sim;
  SilkRoadFleet fleet(sim, small_config(), 2, 0xFEE7ULL, {}, tight_sync());
  const auto dips = make_dips(10);
  fleet.add_vip(vip_ep(), {dips[0], dips[1], dips[2], dips[3]});  // pos 1
  fleet.request_update(add_of(dips[4]));                          // pos 2
  sim.run();
  ASSERT_EQ(fleet.applied_through(0), 2u);
  fleet.fail_switch(0);
  // Five mutations: positions 3..7, capacity retains 4..7 — position 3 is
  // gone and the watermark can no longer be served a delta.
  for (int i = 5; i < 10; ++i) fleet.request_update(add_of(dips[i]));
  sim.run();
  EXPECT_EQ(fleet.journal_compacted(), 3u);
  fleet.restore_switch(0);
  sim.run();
  EXPECT_EQ(fleet.delta_sessions(), 0u);
  EXPECT_EQ(fleet.full_sessions(), 1u);
  // One VIP config record: one (final) chunk certifying the journal head.
  EXPECT_EQ(fleet.ctrl_resync_chunks(), 1u);
  EXPECT_EQ(fleet.applied_through(0), fleet.journal_head());
  EXPECT_EQ(fleet.live_count(), 2u);
  EXPECT_TRUE(fleet.converged());
  EXPECT_TRUE(fleet.spans().audit_complete().empty());
}

TEST(SilkRoadFleet, UpToDateReplicaGetsEmptyConfirmationSession) {
  sim::Simulator sim;
  SilkRoadFleet fleet(sim, small_config(), 2, 0xFEE7ULL, {}, tight_sync());
  const auto dips = make_dips(5);
  fleet.add_vip(vip_ep(), {dips[0], dips[1], dips[2], dips[3]});
  fleet.request_update(add_of(dips[4]));
  sim.run();
  fleet.fail_switch(0);
  fleet.restore_switch(0);  // nothing changed while it was down
  sim.run();
  EXPECT_EQ(fleet.empty_sessions(), 1u);
  EXPECT_EQ(fleet.delta_sessions(), 0u);
  EXPECT_EQ(fleet.full_sessions(), 0u);
  // The empty confirmation still rides the channel as one final chunk: the
  // switch rejoins ECMP only after the round trip.
  EXPECT_EQ(fleet.ctrl_resync_chunks(), 1u);
  EXPECT_GT(fleet.ctrl_resync_bytes(), 0u);
  EXPECT_EQ(fleet.live_count(), 2u);
  EXPECT_TRUE(fleet.converged());
  EXPECT_TRUE(fleet.spans().audit_complete().empty());
}

// --- Chunked resync is ordinary lossy traffic (no reliability fiction) -----

TEST(SilkRoadFleet, ResyncChunksSufferLossAndRetriesWithoutReEscalating) {
  sim::Simulator sim;
  fault::ControlChannel::Config channel;
  channel.base_delay = 100 * sim::kMicrosecond;
  channel.retry_timeout = 1 * sim::kMillisecond;
  channel.resync_after_retries = 2;
  SyncConfig sync;
  sync.chunk_entries = 1;   // several chunks, each its own lossy message
  sync.checkpoint_every = 1;  // durable watermark tracks every delivery
  SilkRoadFleet fleet(sim, small_config(), 2, 0xFEE7ULL, channel, sync);
  const auto dips = make_dips(8);
  fleet.add_vip(vip_ep(), {dips[0], dips[1], dips[2], dips[3]});
  fleet.request_update(add_of(dips[4]));
  sim.run();
  fleet.fail_switch(0);
  for (int i = 5; i < 8; ++i) fleet.request_update(add_of(dips[i]));
  sim.run();
  // Blackout: every transmission (chunks and acks alike) dies for the first
  // 5 ms of the session — far past resync_after_retries worth of retries.
  const sim::Time t0 = sim.now();
  fleet.set_channel_loss_hook(
      0, [t0](sim::Time now) { return now < t0 + 5 * sim::kMillisecond; });
  fleet.restore_switch(0);
  sim.run();
  const auto& ch = fleet.channel_at(0);
  // Exactly one session: chunks retry with capped backoff but never
  // re-escalate (escalating would wipe and restart the very transfer that
  // is trying to land).
  EXPECT_EQ(ch.resyncs(), 1u);
  EXPECT_GT(ch.retries(), 2u);
  EXPECT_GT(ch.dropped(), 0u);
  EXPECT_EQ(fleet.delta_sessions(), 1u);
  EXPECT_EQ(fleet.live_count(), 2u);
  EXPECT_TRUE(fleet.converged());
  // The chunk legs carry the loss story end to end: drop, retry, delivery,
  // application — all on spans parented under the session span.
  const obs::UpdateSpan* session = nullptr;
  std::size_t chunk_spans = 0;
  bool saw_lossy_chunk = false;
  for (const auto* span : fleet.spans().all()) {
    if (span->resync) session = span;
    if (!span->chunk) continue;
    ++chunk_spans;
    EXPECT_TRUE(span->has(obs::SpanEventKind::kChunkBegin, 0));
    EXPECT_TRUE(span->has(obs::SpanEventKind::kChannelDeliver, 0));
    EXPECT_TRUE(span->has(obs::SpanEventKind::kResyncApply, 0));
    if (span->has(obs::SpanEventKind::kChannelDrop, 0) &&
        span->has(obs::SpanEventKind::kChannelRetry, 0)) {
      saw_lossy_chunk = true;
    }
  }
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(chunk_spans, 3u);  // three journal records at one per chunk
  EXPECT_TRUE(saw_lossy_chunk);
  for (const auto* span : fleet.spans().all()) {
    if (span->chunk) EXPECT_EQ(span->parent_id, session->id);
  }
  EXPECT_TRUE(fleet.spans().audit_complete().empty());
}

// --- Crash mid-resync resumes from the last acknowledged chunk -------------

TEST(SilkRoadFleet, RestartDuringResyncResumesFromChunkWatermark) {
  sim::Simulator sim;
  fault::ControlChannel::Config channel;
  channel.base_delay = 200 * sim::kMicrosecond;
  channel.retry_timeout = 1 * sim::kMillisecond;
  SyncConfig sync;
  sync.chunk_entries = 1;
  sync.checkpoint_every = 1;
  SilkRoadFleet fleet(sim, small_config(), 2, 0xFEE7ULL, channel, sync);
  const auto dips = make_dips(10);
  fleet.add_vip(vip_ep(), {dips[0], dips[1], dips[2], dips[3]});  // pos 1
  fleet.request_update(add_of(dips[4]));                          // pos 2
  sim.run();
  ASSERT_EQ(fleet.snapshot_of(0).watermark, 2u);
  fleet.fail_switch(0);
  for (int i = 5; i < 11; ++i) {  // positions 3..8
    fleet.request_update(add_of(dips[i % 10]));
  }
  sim.run();
  // First catch-up session: six single-record chunks. The loss hook lets the
  // first three transmissions through (chunks 0..2) and blackholes the rest
  // — chunks 3..5 and every ack die in the air.
  int calls = 0;
  fleet.set_channel_loss_hook(0, [&calls](sim::Time) { return ++calls > 3; });
  const sim::Time t0 = sim.now();
  fleet.restore_switch(0);
  EXPECT_EQ(fleet.ctrl_resync_chunks(), 6u);
  sim.run_until(t0 + 500 * sim::kMicrosecond);
  // Chunks 0..2 (positions 3..5) landed and were applied; each chunk
  // boundary checkpointed, so position 5 is durable. The session is still
  // open: the switch has not rejoined ECMP.
  EXPECT_EQ(fleet.applied_through(0), 5u);
  EXPECT_EQ(fleet.snapshot_of(0).watermark, 5u);
  EXPECT_EQ(fleet.live_count(), 1u);
  // Crash again, mid-session. The in-flight tail of the transfer dies.
  fleet.fail_switch(0);
  // Second restore resumes from the checkpointed chunk watermark: only
  // positions 6..8 ship — three chunks, not six (and not a full transfer).
  fleet.set_channel_loss_hook(0, nullptr);
  fleet.restore_switch(0);
  EXPECT_EQ(fleet.ctrl_resync_chunks(), 9u);  // 6 + 3, resumed not restarted
  sim.run();
  EXPECT_EQ(fleet.delta_sessions(), 2u);
  EXPECT_EQ(fleet.full_sessions(), 0u);
  EXPECT_EQ(fleet.applied_through(0), 8u);
  EXPECT_EQ(fleet.live_count(), 2u);
  EXPECT_TRUE(fleet.converged());
  fleet.self_check();
  EXPECT_TRUE(fleet.spans().audit_complete().empty());
}

// --- Telemetry -------------------------------------------------------------

TEST(SilkRoadFleet, SyncSubsystemExportsJournalSnapshotAndSessionMetrics) {
  sim::Simulator sim;
  SilkRoadFleet fleet(sim, small_config(), 2, 0xFEE7ULL, {}, tight_sync());
  const auto dips = make_dips(8);
  fleet.add_vip(vip_ep(), {dips[0], dips[1]});
  for (int i = 2; i < 6; ++i) fleet.request_update(add_of(dips[i]));
  sim.run();
  fleet.fail_switch(0);
  fleet.request_update(add_of(dips[6]));
  sim.run();
  fleet.restore_switch(0);
  sim.run();
  ASSERT_TRUE(fleet.converged());
  const auto snap = fleet.metrics_snapshot();
  EXPECT_EQ(snap.value_of("silkroad_ctrl_journal_head"),
            static_cast<double>(fleet.journal_head()));
  EXPECT_EQ(snap.value_of("silkroad_ctrl_journal_appended_total"), 6.0);
  EXPECT_EQ(snap.value_of("silkroad_ctrl_journal_compactions_total"),
            static_cast<double>(fleet.journal_compacted()));
  EXPECT_EQ(snap.value_of("silkroad_ctrl_journal_entries"), 4.0);  // capacity
  EXPECT_EQ(snap.value_of("silkroad_ctrl_snapshot_checkpoints_total"),
            static_cast<double>(fleet.snapshot_checkpoints()));
  EXPECT_GT(snap.value_of("silkroad_ctrl_snapshot_bytes"), 0.0);
  EXPECT_EQ(snap.value_of("silkroad_ctrl_resync_sessions_total",
                          "kind=\"delta\""),
            static_cast<double>(fleet.delta_sessions()));
  EXPECT_EQ(
      snap.value_of("silkroad_ctrl_resync_sessions_total", "kind=\"full\""),
      static_cast<double>(fleet.full_sessions()));
  EXPECT_EQ(
      snap.value_of("silkroad_ctrl_resync_sessions_total", "kind=\"empty\""),
      static_cast<double>(fleet.empty_sessions()));
  // Per-switch chunk traffic counters, and their fleet-wide sums.
  EXPECT_EQ(snap.value_of("silkroad_ctrl_resync_chunks_total", "switch=\"0\""),
            static_cast<double>(fleet.ctrl_resync_chunks()));
  EXPECT_GT(snap.value_of("silkroad_ctrl_resync_bytes_total", "switch=\"0\""),
            0.0);
  EXPECT_EQ(snap.value_of("silkroad_ctrl_resync_chunks_total", "switch=\"1\""),
            0.0);
  const auto* duration = snap.find("silkroad_ctrl_resync_duration_ns");
  ASSERT_NE(duration, nullptr);
  EXPECT_EQ(duration->count, 1u);  // one completed session
}

}  // namespace
}  // namespace silkroad::deploy
