#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace.h"

namespace silkroad::workload {
namespace {

Flow make_flow() {
  Flow flow;
  flow.start = 1'000'000;
  flow.end = 5'000'000;
  flow.tuple = net::FiveTuple{*net::Endpoint::parse("11.0.0.1:40001"),
                              *net::Endpoint::parse("20.0.0.1:80"),
                              net::Protocol::kTcp};
  flow.rate_bps = 1.5e6;
  return flow;
}

DipUpdate make_update() {
  return DipUpdate{60'000'000'000ull, *net::Endpoint::parse("20.0.0.1:80"),
                   *net::Endpoint::parse("10.0.0.2:8080"),
                   UpdateAction::kRemoveDip, UpdateCause::kServiceUpgrade};
}

TEST(Trace, FlowCsvRoundTrip) {
  const Flow flow = make_flow();
  const auto parsed = flow_from_csv(flow_to_csv(flow));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->start, flow.start);
  EXPECT_EQ(parsed->end, flow.end);
  EXPECT_EQ(parsed->tuple, flow.tuple);
  EXPECT_DOUBLE_EQ(parsed->rate_bps, flow.rate_bps);
}

TEST(Trace, FlowCsvIpv6RoundTrip) {
  Flow flow = make_flow();
  flow.tuple.src = *net::Endpoint::parse("[2001:db8::5]:55000");
  flow.tuple.dst = *net::Endpoint::parse("[2001:db8::1]:443");
  flow.tuple.proto = net::Protocol::kUdp;
  const auto parsed = flow_from_csv(flow_to_csv(flow));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tuple, flow.tuple);
}

TEST(Trace, FlowCsvRejectsMalformed) {
  EXPECT_FALSE(flow_from_csv("").has_value());
  EXPECT_FALSE(flow_from_csv("1,2,3").has_value());
  EXPECT_FALSE(flow_from_csv("x,2,11.0.0.1:1,20.0.0.1:80,tcp,5").has_value());
  EXPECT_FALSE(flow_from_csv("1,2,11.0.0.1:1,20.0.0.1:80,icmp,5").has_value());
  // end < start
  EXPECT_FALSE(flow_from_csv("9,2,11.0.0.1:1,20.0.0.1:80,tcp,5").has_value());
  // malformed endpoint
  EXPECT_FALSE(flow_from_csv("1,2,11.0.0.1,20.0.0.1:80,tcp,5").has_value());
}

TEST(Trace, UpdateCsvRoundTrip) {
  const DipUpdate update = make_update();
  const auto parsed = update_from_csv(update_to_csv(update));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at, update.at);
  EXPECT_EQ(parsed->vip, update.vip);
  EXPECT_EQ(parsed->dip, update.dip);
  EXPECT_EQ(parsed->action, update.action);
  EXPECT_EQ(parsed->cause, update.cause);
}

TEST(Trace, CauseNamesRoundTrip) {
  for (const auto cause : kAllCauses) {
    const auto parsed = cause_from_string(to_string(cause));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, cause);
  }
  EXPECT_FALSE(cause_from_string("cosmic-rays").has_value());
}

TEST(Trace, StreamRoundTripWithHeader) {
  std::vector<Flow> flows = {make_flow(), make_flow()};
  flows[1].start += 7;
  flows[1].tuple.src.port = 40002;
  std::stringstream stream;
  write_flow_trace(stream, flows);
  const auto read_back = read_flow_trace(stream);
  ASSERT_TRUE(read_back.has_value());
  ASSERT_EQ(read_back->size(), 2u);
  EXPECT_EQ((*read_back)[1].tuple.src.port, 40002);
}

TEST(Trace, StreamReportsErrorLine) {
  std::stringstream stream;
  stream << "at_ns,vip,dip,action,cause\n";
  stream << update_to_csv(make_update()) << "\n";
  stream << "garbage line\n";
  std::string error;
  EXPECT_FALSE(read_update_trace(stream, &error).has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos);
}

TEST(Trace, EmptyStreamYieldsEmptyTrace) {
  std::stringstream stream;
  const auto flows = read_flow_trace(stream);
  ASSERT_TRUE(flows.has_value());
  EXPECT_TRUE(flows->empty());
}

TEST(Trace, GeneratedUpdatesSurviveRoundTrip) {
  UpdateGenerator gen({.seed = 5}, *net::Endpoint::parse("20.0.0.1:80"),
                      {*net::Endpoint::parse("10.0.0.1:20"),
                       *net::Endpoint::parse("10.0.0.2:20")});
  const auto updates = gen.generate(10.0, 10 * sim::kMinute);
  std::stringstream stream;
  write_update_trace(stream, updates);
  const auto read_back = read_update_trace(stream);
  ASSERT_TRUE(read_back.has_value());
  ASSERT_EQ(read_back->size(), updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ((*read_back)[i].at, updates[i].at);
    EXPECT_EQ((*read_back)[i].dip, updates[i].dip);
  }
}

}  // namespace
}  // namespace silkroad::workload
