#include <gtest/gtest.h>

#include <map>

#include "core/memory_model.h"
#include "core/silkroad_switch.h"
#include "lb/scenario.h"

namespace silkroad::core {
namespace {

net::Endpoint vip_ep(std::uint32_t n = 1) {
  return {net::IpAddress::v4(0x14000000 + n), 80};
}

std::vector<net::Endpoint> make_dips(int n, int base = 0) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 +
                                       static_cast<std::uint32_t>(base + i)),
                    20});
  }
  return dips;
}

net::FiveTuple make_flow(std::uint32_t client, std::uint32_t vip = 1) {
  return net::FiveTuple{{net::IpAddress::v4(0x0B000000 + client), 1234},
                        vip_ep(vip),
                        net::Protocol::kTcp};
}

net::Packet packet_of(std::uint32_t client, bool syn = false, bool fin = false,
                      std::uint32_t vip = 1) {
  net::Packet p;
  p.flow = make_flow(client, vip);
  p.syn = syn;
  p.fin = fin;
  p.size_bytes = 100;
  return p;
}

SilkRoadSwitch::Config small_config() {
  SilkRoadSwitch::Config config;
  config.conn_table = SilkRoadSwitch::conn_table_for(4096);
  config.learning = {.capacity = 64, .timeout = sim::kMillisecond};
  config.cpu = {.tasks_per_second = 200'000.0};
  return config;
}

workload::DipUpdate remove_update(const net::Endpoint& dip,
                                  std::uint32_t vip = 1, sim::Time at = 0) {
  return {at, vip_ep(vip), dip, workload::UpdateAction::kRemoveDip,
          workload::UpdateCause::kServiceUpgrade};
}

workload::DipUpdate add_update(const net::Endpoint& dip,
                               std::uint32_t vip = 1) {
  return {0, vip_ep(vip), dip, workload::UpdateAction::kAddDip,
          workload::UpdateCause::kServiceUpgrade};
}

TEST(SilkRoadSwitch, ConnTableGeometryHelper) {
  const auto geo = SilkRoadSwitch::conn_table_for(1'000'000);
  EXPECT_EQ(geo.ways, 4u);
  EXPECT_EQ(geo.stages, 4u);
  // Capacity >= 1M at 90% occupancy.
  EXPECT_GE(geo.stages * geo.buckets_per_stage * geo.ways, 1'100'000u);
}

TEST(SilkRoadSwitch, BasicMappingIsConsistent) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  sw.add_vip(vip_ep(), make_dips(8));
  const auto first = sw.process_packet(packet_of(7, true));
  ASSERT_TRUE(first.dip.has_value());
  EXPECT_FALSE(first.handled_by_slb);
  // Before CPU insertion completes, the mapping must already be stable.
  const auto second = sw.process_packet(packet_of(7));
  EXPECT_EQ(*second.dip, *first.dip);
  sim.run();  // learning + insertion complete
  EXPECT_EQ(sw.stats().inserts, 1u);
  const auto third = sw.process_packet(packet_of(7));
  EXPECT_EQ(*third.dip, *first.dip);
  EXPECT_GT(sw.stats().conn_table_hits, 0u);
}

TEST(SilkRoadSwitch, UnknownVipIsNotBalanced) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  sw.add_vip(vip_ep(1), make_dips(4));
  EXPECT_FALSE(sw.process_packet(packet_of(1, true, false, 99)).dip.has_value());
  EXPECT_EQ(sw.stats().packets, 0u);
}

TEST(SilkRoadSwitch, FinErasesEntryAndReleasesVersion) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  sw.add_vip(vip_ep(), make_dips(4));
  sw.process_packet(packet_of(1, true));
  sim.run();
  EXPECT_EQ(sw.conn_table().size(), 1u);
  sw.process_packet(packet_of(1, false, true));
  sim.run();
  EXPECT_EQ(sw.conn_table().size(), 0u);
  EXPECT_EQ(sw.stats().erases, 1u);
}

TEST(SilkRoadSwitch, FlowEndingBeforeInsertionIsSkipped) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  sw.add_vip(vip_ep(), make_dips(4));
  sw.process_packet(packet_of(1, true));
  sw.process_packet(packet_of(1, false, true));  // FIN while still pending
  sim.run();
  EXPECT_EQ(sw.conn_table().size(), 0u);
  EXPECT_EQ(sw.stats().inserts, 0u);
}

TEST(SilkRoadSwitch, UpdateFlipsOnlyAfterPendingInserted) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(8);
  sw.add_vip(vip_ep(), dips);
  // Start flows; request an update while they are pending.
  std::map<std::uint32_t, net::Endpoint> first;
  for (std::uint32_t i = 0; i < 32; ++i) {
    first.emplace(i, *sw.process_packet(packet_of(i, true)).dip);
  }
  sw.request_update(remove_update(dips[0]));
  sim.run_until(sim.now());  // control plane picks up the request
  EXPECT_TRUE(sw.update_in_flight());
  // Mid-update, every pending flow still maps to its original DIP (Step 1
  // serves the old version).
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(*sw.process_packet(packet_of(i)).dip, first.at(i));
  }
  sim.run();
  EXPECT_FALSE(sw.update_in_flight());
  EXPECT_EQ(sw.stats().updates_completed, 1u);
  // Post-update, ongoing flows keep their DIP (ConnTable pins them) even
  // though the pool changed.
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(*sw.process_packet(packet_of(i)).dip, first.at(i));
  }
  // New flows avoid the removed DIP.
  for (std::uint32_t i = 100; i < 140; ++i) {
    EXPECT_NE(*sw.process_packet(packet_of(i, true)).dip, dips[0]);
  }
}

TEST(SilkRoadSwitch, NewFlowsDuringStep1UseOldPoolButStayConsistent) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(8);
  sw.add_vip(vip_ep(), dips);
  sw.process_packet(packet_of(1, true));  // keeps Step 1 open until inserted
  sw.request_update(remove_update(dips[2]));
  sim.run_until(sim.now());  // control plane picks up the request
  ASSERT_TRUE(sw.update_in_flight());
  // A flow arriving during Step 1 maps via the old pool and is recorded in
  // the TransitTable.
  const auto during = sw.process_packet(packet_of(50, true));
  ASSERT_TRUE(during.dip.has_value());
  sim.run();  // flip + finish
  EXPECT_FALSE(sw.update_in_flight());
  // It must keep that DIP afterward, even if the old pool said dips[2].
  EXPECT_EQ(*sw.process_packet(packet_of(50)).dip, *during.dip);
}

TEST(SilkRoadSwitch, SerializesConcurrentUpdates) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(8);
  sw.add_vip(vip_ep(), dips);
  sw.process_packet(packet_of(1, true));  // pending flow blocks the flip
  sw.request_update(remove_update(dips[0], 1, 10));
  sw.request_update(remove_update(dips[1], 1, 20));
  sw.request_update(remove_update(dips[2], 1, 30));
  sim.run_until(sim.now());  // control plane picks up the first request
  EXPECT_TRUE(sw.update_in_flight());
  EXPECT_EQ(sw.queued_updates(), 2u);
  sim.run();
  EXPECT_EQ(sw.stats().updates_completed, 3u);
  EXPECT_EQ(sw.queued_updates(), 0u);
  const auto* mgr = sw.version_manager(vip_ep());
  ASSERT_NE(mgr, nullptr);
  EXPECT_EQ(mgr->pool(mgr->current_version())->live_count(), 5u);
}

TEST(SilkRoadSwitch, CoalescesSameInstantBurst) {
  // A rolling-reboot batch (several removals at one instant) consumes a
  // single version and a single VIPTable flip.
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(8);
  sw.add_vip(vip_ep(), dips);
  sw.request_update(remove_update(dips[0], 1, 10));
  sw.request_update(remove_update(dips[1], 1, 10));
  sw.request_update(remove_update(dips[2], 1, 10));
  sim.run();
  EXPECT_EQ(sw.stats().updates_requested, 3u);
  EXPECT_EQ(sw.stats().updates_completed, 1u);
  const auto* mgr = sw.version_manager(vip_ep());
  EXPECT_EQ(mgr->pool(mgr->current_version())->live_count(), 5u);
}

TEST(SilkRoadSwitch, VersionReuseOnRollingReboot) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(8);
  sw.add_vip(vip_ep(), dips);
  // A live connection pins the original version so its pool (still holding
  // the rebooted DIP) is available for reuse when the DIP returns.
  const auto pinned = sw.process_packet(packet_of(1, true));
  sim.run();
  sw.request_update(remove_update(dips[0]));
  sim.run();
  sw.request_update(add_update(dips[0]));
  sim.run();
  const auto* mgr = sw.version_manager(vip_ep());
  EXPECT_GE(mgr->versions_reused(), 1u);
  EXPECT_TRUE(mgr->pool(mgr->current_version())->contains_live(dips[0]));
  // The pinned flow is untouched throughout.
  EXPECT_EQ(*sw.process_packet(packet_of(1)).dip, *pinned.dip);
}

TEST(SilkRoadSwitch, DigestCollisionSynRedirectResolves) {
  // 1-bit digests force collisions; every colliding SYN must be redirected,
  // resolved, and end up consistently mapped.
  sim::Simulator sim;
  auto config = small_config();
  config.conn_table.digest_bits = 1;
  config.conn_table.buckets_per_stage = 16;
  SilkRoadSwitch sw(sim, config);
  sw.add_vip(vip_ep(), make_dips(8));
  std::map<std::uint32_t, net::Endpoint> first;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const auto r = sw.process_packet(packet_of(i, true));
    if (r.dip) first.emplace(i, *r.dip);
    sim.run();  // drain insertions between arrivals
  }
  EXPECT_GT(sw.stats().syn_false_positives, 0u);
  // All flows remain consistently mapped afterwards.
  for (const auto& [client, dip] : first) {
    const auto r = sw.process_packet(packet_of(client));
    ASSERT_TRUE(r.dip.has_value());
    EXPECT_EQ(*r.dip, dip) << "client " << client;
  }
}

TEST(SilkRoadSwitch, TableOverflowFallsBackToSoftware) {
  sim::Simulator sim;
  auto config = small_config();
  config.conn_table.stages = 2;
  config.conn_table.buckets_per_stage = 4;
  config.conn_table.ways = 2;  // capacity 16
  SilkRoadSwitch sw(sim, config);
  sw.add_vip(vip_ep(), make_dips(4));
  std::map<std::uint32_t, net::Endpoint> first;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto r = sw.process_packet(packet_of(i, true));
    ASSERT_TRUE(r.dip.has_value());
    first.emplace(i, *r.dip);
  }
  sim.run();
  EXPECT_GT(sw.stats().insert_failures, 0u);
  EXPECT_GT(sw.stats().software_fallback_conns, 0u);
  // Overflowed flows keep a consistent mapping through the software table.
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(*sw.process_packet(packet_of(i)).dip, first.at(i));
  }
}

TEST(SilkRoadSwitch, VersionExhaustionEvictsAndContinues) {
  sim::Simulator sim;
  auto config = small_config();
  config.version_bits = 2;  // only 4 versions
  config.enable_version_reuse = false;
  SilkRoadSwitch sw(sim, config);
  const auto dips = make_dips(16);
  sw.add_vip(vip_ep(), dips);
  // Long-lived flows pin each version.
  for (std::uint32_t round = 0; round < 8; ++round) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      sw.process_packet(packet_of(round * 100 + i, true));
    }
    sim.run();
    sw.request_update(remove_update(dips[round]));
    sim.run();
  }
  EXPECT_EQ(sw.stats().updates_completed, 8u);
  EXPECT_GT(sw.stats().versions_evicted, 0u);
  // Evicted flows still map consistently (exact software mappings).
  EXPECT_GT(sw.stats().software_fallback_conns, 0u);
}

TEST(SilkRoadSwitch, MeterMarksAndDrops) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  sw.add_vip(vip_ep(), make_dips(4));
  sw.attach_meter(vip_ep(),
                  {.cir_bps = 800.0,  // 100 B/s: tiny
                   .eir_bps = 800.0,
                   .cbs_bytes = 200,
                   .ebs_bytes = 200},
                  /*enforce=*/true);
  int delivered = 0, dropped = 0;
  for (std::uint32_t i = 0; i < 50; ++i) {
    const auto r = sw.process_packet(packet_of(1000 + i, true));
    (r.dip.has_value() ? delivered : dropped)++;
  }
  EXPECT_GT(delivered, 0);
  EXPECT_GT(dropped, 0);
  EXPECT_EQ(sw.stats().meter_drops, static_cast<std::uint64_t>(dropped));
}

TEST(SilkRoadSwitch, DipFailureResilientModeKeepsVersion) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(8);
  sw.add_vip(vip_ep(), dips);
  const auto* mgr = sw.version_manager(vip_ep());
  const auto before = mgr->current_version();
  sw.handle_dip_failure(vip_ep(), dips[3], /*resilient_in_place=*/true);
  EXPECT_EQ(mgr->current_version(), before);  // no flip
  EXPECT_FALSE(mgr->pool(before)->contains_live(dips[3]));
  // New flows never select the failed DIP.
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_NE(*sw.process_packet(packet_of(i, true)).dip, dips[3]);
  }
}

TEST(SilkRoadSwitch, AgingErasesIdleConnections) {
  sim::Simulator sim;
  auto config = small_config();
  config.idle_timeout = 5 * sim::kSecond;
  config.aging_sweep_period = sim::kSecond;
  SilkRoadSwitch sw(sim, config);
  sw.add_vip(vip_ep(), make_dips(4));
  sw.process_packet(packet_of(1, true));  // no FIN will ever come (UDP-like)
  sim.run_until(2 * sim::kSecond);
  EXPECT_EQ(sw.conn_table().size(), 1u);
  sim.run_until(20 * sim::kSecond);
  EXPECT_EQ(sw.conn_table().size(), 0u);
  EXPECT_GE(sw.stats().aged_out, 1u);
  EXPECT_GE(sw.stats().erases, 1u);
  // With the table drained the sweep disarms: the queue runs dry.
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SilkRoadSwitch, ActiveConnectionsSurviveAging) {
  sim::Simulator sim;
  auto config = small_config();
  config.idle_timeout = 5 * sim::kSecond;
  config.aging_sweep_period = sim::kSecond;
  SilkRoadSwitch sw(sim, config);
  sw.add_vip(vip_ep(), make_dips(4));
  sw.process_packet(packet_of(1, true));
  // Keep the flow chatty: one packet every 2 s refreshes the hit bit.
  for (int s = 2; s <= 30; s += 2) {
    sim.run_until(static_cast<sim::Time>(s) * sim::kSecond);
    sw.process_packet(packet_of(1));
  }
  EXPECT_EQ(sw.conn_table().size(), 1u);
  EXPECT_EQ(sw.stats().aged_out, 0u);
}

TEST(SilkRoadSwitch, AgingReleasesVersions) {
  // An idle-expired connection must release its pool version so the number
  // recycles — aging is what keeps 6-bit versions sufficient (§4.2).
  sim::Simulator sim;
  auto config = small_config();
  config.idle_timeout = 3 * sim::kSecond;
  config.aging_sweep_period = sim::kSecond;
  SilkRoadSwitch sw(sim, config);
  const auto dips = make_dips(8);
  sw.add_vip(vip_ep(), dips);
  sw.process_packet(packet_of(1, true));
  sim.run_until(sim::kSecond);
  sw.request_update(remove_update(dips[0]));  // flow 1 now pins old version
  sim.run_until(2 * sim::kSecond);
  const auto* mgr = sw.version_manager(vip_ep());
  EXPECT_EQ(mgr->active_versions(), 2u);
  sim.run_until(30 * sim::kSecond);  // flow 1 ages out
  EXPECT_EQ(mgr->active_versions(), 1u);
}

TEST(SilkRoadSwitch, SubMicrosecondDataPlaneLatency) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  sw.add_vip(vip_ep(), make_dips(8));
  const auto r = sw.process_packet(packet_of(1, true));
  EXPECT_LT(r.added_latency, sim::kMicrosecond);  // §5.2: sub-µs pipeline
  sim.run();
  const auto hit = sw.process_packet(packet_of(1));
  EXPECT_LT(hit.added_latency, sim::kMicrosecond);
}

TEST(SilkRoadSwitch, RedirectedSynPaysMilliseconds) {
  sim::Simulator sim;
  auto config = small_config();
  config.conn_table.digest_bits = 1;  // force collisions
  config.conn_table.buckets_per_stage = 8;
  SilkRoadSwitch sw(sim, config);
  sw.add_vip(vip_ep(), make_dips(8));
  bool saw_redirect = false;
  for (std::uint32_t i = 0; i < 400 && !saw_redirect; ++i) {
    const auto r = sw.process_packet(packet_of(i, true));
    if (r.redirected_to_cpu) {
      saw_redirect = true;
      EXPECT_GE(r.added_latency, sim::kMillisecond);  // §4.2: "a few ms"
    }
    sim.run();
  }
  EXPECT_TRUE(saw_redirect);
}

TEST(SilkRoadSwitch, Ipv6EndToEnd) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  const net::Endpoint vip{net::IpAddress::v6(0x20010DB8'00000001ULL, 0x80), 443};
  std::vector<net::Endpoint> dips;
  for (std::uint64_t d = 0; d < 8; ++d) {
    dips.push_back({net::IpAddress::v6(0xFD000000'00000000ULL, d + 1), 8443});
  }
  sw.add_vip(vip, dips);
  std::map<std::uint64_t, net::Endpoint> assigned;
  for (std::uint64_t c = 0; c < 64; ++c) {
    net::Packet syn;
    syn.flow = {{net::IpAddress::v6(0x20010DB8'000000FFULL, c), 50000},
                vip,
                net::Protocol::kTcp};
    syn.syn = true;
    const auto r = sw.process_packet(syn);
    ASSERT_TRUE(r.dip.has_value());
    EXPECT_TRUE(r.dip->ip.is_v6());
    assigned.emplace(c, *r.dip);
  }
  sim.run();
  sw.request_update({sim.now(), vip, dips[0],
                     workload::UpdateAction::kRemoveDip,
                     workload::UpdateCause::kServiceUpgrade});
  sim.run();
  for (std::uint64_t c = 0; c < 64; ++c) {
    net::Packet data;
    data.flow = {{net::IpAddress::v6(0x20010DB8'000000FFULL, c), 50000},
                 vip,
                 net::Protocol::kTcp};
    EXPECT_EQ(*sw.process_packet(data).dip, assigned.at(c));
  }
}

TEST(SilkRoadSwitch, UdpFlowsBalanceAndAge) {
  // UDP has no SYN/FIN: flows learn from their first packet and expire only
  // through aging.
  sim::Simulator sim;
  auto config = small_config();
  config.idle_timeout = 2 * sim::kSecond;
  config.aging_sweep_period = sim::kSecond;
  SilkRoadSwitch sw(sim, config);
  sw.add_vip(vip_ep(), make_dips(4));
  net::Packet p;
  p.flow = {{net::IpAddress::v4(0x0B0000AA), 5000}, vip_ep(),
            net::Protocol::kUdp};
  p.size_bytes = 512;
  const auto first = sw.process_packet(p);
  ASSERT_TRUE(first.dip.has_value());
  sim.run_until(sim::kSecond);
  EXPECT_EQ(*sw.process_packet(p).dip, *first.dip);
  EXPECT_EQ(sw.conn_table().size(), 1u);
  // Silence: the entry ages out.
  sim.run_until(20 * sim::kSecond);
  EXPECT_EQ(sw.conn_table().size(), 0u);
}

TEST(SilkRoadSwitch, VipsAreIsolated) {
  // An update on one VIP must not disturb another VIP's flows or pools.
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  sw.add_vip(vip_ep(1), make_dips(8, 0));
  sw.add_vip(vip_ep(2), make_dips(8, 100));
  std::map<std::uint32_t, net::Endpoint> vip2_flows;
  for (std::uint32_t c = 0; c < 64; ++c) {
    vip2_flows.emplace(c, *sw.process_packet(packet_of(c, true, false, 2)).dip);
  }
  sim.run();
  const auto* mgr2_before = sw.version_manager(vip_ep(2));
  const auto version_before = mgr2_before->current_version();
  sw.request_update(remove_update(make_dips(8, 0)[3], 1));
  sim.run();
  EXPECT_EQ(sw.version_manager(vip_ep(2))->current_version(), version_before);
  for (std::uint32_t c = 0; c < 64; ++c) {
    EXPECT_EQ(*sw.process_packet(packet_of(c, false, false, 2)).dip,
              vip2_flows.at(c));
  }
}

TEST(SilkRoadSwitch, RemovingAllDipsDropsNewFlows) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(2);
  sw.add_vip(vip_ep(), dips);
  sw.request_update(remove_update(dips[0]));
  sim.run();
  sw.request_update(remove_update(dips[1]));
  sim.run();
  EXPECT_FALSE(sw.process_packet(packet_of(9, true)).dip.has_value());
}

TEST(SilkRoadSwitch, DebugReportIsInformative) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  sw.add_vip(vip_ep(), make_dips(8));
  sw.process_packet(packet_of(1, true));
  sim.run();
  const auto report = sw.debug_report();
  EXPECT_NE(report.find("1 connections installed"), std::string::npos);
  EXPECT_NE(report.find(vip_ep().to_string()), std::string::npos);
  EXPECT_NE(report.find("update idle"), std::string::npos);
  // During an update the report flags the VIP.
  sw.process_packet(packet_of(2, true));  // pending flow keeps Step 1 open
  sw.request_update(remove_update(make_dips(8)[0]));
  sim.run_until(sim.now());
  EXPECT_NE(sw.debug_report().find("UPDATING"), std::string::npos);
  sim.run();
  EXPECT_NE(sw.debug_report().find("1 updates done"), std::string::npos);
}

TEST(SilkRoadSwitch, MemoryUsageReporting) {
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  sw.add_vip(vip_ep(), make_dips(100));
  const auto usage = sw.memory_usage();
  EXPECT_EQ(usage.transit_table_bytes, 256u);
  EXPECT_GT(usage.conn_table_bytes, 0u);
  EXPECT_GT(usage.dip_pool_table_bytes, 0u);
  EXPECT_EQ(usage.total(), usage.conn_table_bytes + usage.dip_pool_table_bytes +
                               usage.transit_table_bytes);
}

// --- End-to-end PCC scenarios (the heart of the paper) -----------------------

lb::ScenarioStats run_scenario(bool use_transit, double updates_per_min,
                               double arrivals_per_min,
                               sim::Time learning_timeout = sim::kMillisecond,
                               std::size_t transit_bytes = 256) {
  sim::Simulator sim;
  auto config = small_config();
  config.use_transit_table = use_transit;
  config.learning.timeout = learning_timeout;
  config.transit_table_bytes = transit_bytes;
  SilkRoadSwitch sw(sim, config);

  lb::ScenarioConfig scenario_config;
  scenario_config.horizon = 3 * sim::kMinute;
  scenario_config.seed = 21;
  scenario_config.vip_loads = {
      {vip_ep(), arrivals_per_min, workload::FlowProfile::hadoop(), false}};
  scenario_config.dip_pools = {make_dips(16)};
  workload::UpdateGenerator gen({.seed = 22}, vip_ep(), make_dips(16));
  scenario_config.updates =
      gen.generate(updates_per_min, scenario_config.horizon);
  lb::Scenario scenario(sim, sw, scenario_config);
  return scenario.run();
}

// --- Failure injection -----------------------------------------------------

TEST(SilkRoadFailureInjection, SlowCpuStillPreservesPcc) {
  // A 100x slower switch CPU stretches every pending window and makes
  // updates crawl through their steps — PCC must still hold.
  sim::Simulator sim;
  auto config = small_config();
  config.cpu = {.tasks_per_second = 2'000.0};
  SilkRoadSwitch sw(sim, config);
  lb::ScenarioConfig sc;
  sc.horizon = 2 * sim::kMinute;
  sc.seed = 7;
  sc.vip_loads = {{vip_ep(), 3000.0, workload::FlowProfile::hadoop(), false}};
  sc.dip_pools = {make_dips(16)};
  workload::UpdateGenerator gen({.seed = 8}, vip_ep(), make_dips(16));
  sc.updates = gen.generate(20.0, sc.horizon);
  lb::Scenario scenario(sim, sw, sc);
  const auto stats = scenario.run();
  EXPECT_GT(stats.flows, 2000u);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_GT(stats.updates_applied, 10u);
}

TEST(SilkRoadFailureInjection, TinyLearningFilterBurst) {
  // A filter of 8 slots against a 500-SYN same-instant burst: many forced
  // flushes, every flow still learned exactly once and mapped consistently.
  sim::Simulator sim;
  auto config = small_config();
  config.learning = {.capacity = 8, .timeout = sim::kMillisecond};
  SilkRoadSwitch sw(sim, config);
  sw.add_vip(vip_ep(), make_dips(8));
  std::map<std::uint32_t, net::Endpoint> first;
  for (std::uint32_t i = 0; i < 500; ++i) {
    first.emplace(i, *sw.process_packet(packet_of(i, true)).dip);
  }
  sim.run();
  EXPECT_EQ(sw.stats().inserts, 500u);
  EXPECT_EQ(sw.conn_table().size(), 500u);
  for (std::uint32_t i = 0; i < 500; ++i) {
    EXPECT_EQ(*sw.process_packet(packet_of(i)).dip, first.at(i));
  }
}

TEST(SilkRoadFailureInjection, UpdateStormDrains) {
  // 200 updates queued at once; the control plane serializes them all and
  // ends idle with a coherent pool.
  sim::Simulator sim;
  SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(16);
  sw.add_vip(vip_ep(), dips);
  for (int round = 0; round < 100; ++round) {
    const auto& victim = dips[static_cast<std::size_t>(round) % 16];
    sw.request_update(remove_update(victim, 1, static_cast<sim::Time>(round * 2 + 1)));
    workload::DipUpdate add = add_update(victim, 1);
    add.at = static_cast<sim::Time>(round * 2 + 2);
    sw.request_update(add);
  }
  sim.run();
  EXPECT_FALSE(sw.update_in_flight());
  EXPECT_EQ(sw.queued_updates(), 0u);
  const auto* mgr = sw.version_manager(vip_ep());
  EXPECT_EQ(mgr->pool(mgr->current_version())->live_count(), 16u);
}

TEST(SilkRoadPcc, NoViolationsWithTransitTable) {
  const auto stats = run_scenario(true, 30.0, 3000.0);
  EXPECT_GT(stats.flows, 5000u);
  EXPECT_GT(stats.updates_applied, 30u);
  EXPECT_EQ(stats.violations, 0u);  // the paper's headline guarantee
  EXPECT_DOUBLE_EQ(stats.slb_traffic_fraction, 0.0);
}

TEST(SilkRoadPcc, AblationWithoutTransitTableViolates) {
  const auto with_transit = run_scenario(true, 40.0, 6000.0);
  const auto without = run_scenario(false, 40.0, 6000.0);
  EXPECT_EQ(with_transit.violations, 0u);
  EXPECT_GT(without.violations, 0u);  // Fig. 16's middle curve
}

TEST(SilkRoadPcc, LargerLearningTimeoutIncreasesExposureWithoutTransit) {
  const auto fast = run_scenario(false, 40.0, 6000.0, sim::kMillisecond);
  const auto slow = run_scenario(false, 40.0, 6000.0, 5 * sim::kMillisecond);
  EXPECT_GE(slow.violations, fast.violations);
}

}  // namespace
}  // namespace silkroad::core
