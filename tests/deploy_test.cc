#include <gtest/gtest.h>

#include "deploy/topology.h"
#include "deploy/vip_assignment.h"

namespace silkroad::deploy {
namespace {

std::vector<VipDemand> make_demands(int n, std::uint64_t conns_each,
                                    double gbps_each) {
  std::vector<VipDemand> demands;
  for (int i = 0; i < n; ++i) {
    VipDemand d;
    d.vip = {net::IpAddress::v4(0x14000000 + static_cast<std::uint32_t>(i)), 80};
    d.active_connections = conns_each;
    d.traffic_gbps = gbps_each;
    demands.push_back(d);
  }
  return demands;
}

TEST(Topology, LayersAndEnablement) {
  ClosTopology topo(48, 16, 4);
  EXPECT_EQ(topo.switches().size(), 68u);
  EXPECT_EQ(topo.enabled_count(Layer::kToR), 48u);
  EXPECT_EQ(topo.enabled_count(Layer::kCore), 4u);
  topo.enable_only(Layer::kToR, 10);
  EXPECT_EQ(topo.enabled_count(Layer::kToR), 10u);
  EXPECT_EQ(topo.enabled_count(Layer::kAgg), 16u);
}

TEST(VipAssignment, AssignsEverythingWithinBudgets) {
  ClosTopology topo(32, 8, 4, /*sram=*/50u << 20, /*gbps=*/6400);
  const auto demands = make_demands(100, 200'000, 50.0);
  const auto assignment = assign_vips(topo, demands);
  EXPECT_EQ(assignment.unassigned, 0u);
  EXPECT_LE(assignment.max_sram_utilization, 1.0);
  EXPECT_LE(assignment.max_capacity_utilization, 1.0);
}

TEST(VipAssignment, SpreadsBigVipsToWideLayer) {
  // A huge VIP must land on the widest layer (ToR: most switches) to meet
  // the per-switch SRAM budget.
  ClosTopology topo(64, 8, 4, /*sram=*/8u << 20, /*gbps=*/100000);
  std::vector<VipDemand> demands = make_demands(1, 50'000'000, 100.0);
  const auto assignment = assign_vips(topo, demands);
  EXPECT_EQ(assignment.unassigned, 0u);
  EXPECT_EQ(assignment.vip_layer[0], Layer::kToR);
}

TEST(VipAssignment, RespectsCapacityBudget) {
  // Tiny memory demand but huge traffic: capacity must be the binding
  // constraint, forcing the wide layer.
  ClosTopology topo(64, 8, 2, /*sram=*/50u << 20, /*gbps=*/1000);
  std::vector<VipDemand> demands = make_demands(1, 1000, 30'000.0);
  const auto assignment = assign_vips(topo, demands);
  EXPECT_EQ(assignment.unassigned, 0u);
  EXPECT_EQ(assignment.vip_layer[0], Layer::kToR);
}

TEST(VipAssignment, ReportsUnassignableDemand) {
  ClosTopology topo(2, 2, 2, /*sram=*/1u << 20, /*gbps=*/10);
  std::vector<VipDemand> demands = make_demands(1, 100'000'000, 100000.0);
  const auto assignment = assign_vips(topo, demands);
  EXPECT_EQ(assignment.unassigned, 1u);
}

TEST(VipAssignment, BalancesBetterThanAllOnCore) {
  ClosTopology topo(32, 8, 4);
  const auto demands = make_demands(64, 1'000'000, 100.0);
  const auto assignment = assign_vips(topo, demands);
  // Naive "everything at core" utilization for comparison.
  double core_total = 0;
  for (const auto& d : demands) core_total += static_cast<double>(d.sram_bytes());
  const double naive_util =
      core_total / 4.0 / static_cast<double>((50u << 20));
  EXPECT_LT(assignment.max_sram_utilization, naive_util);
}

TEST(VipAssignment, IncrementalDeploymentStillWorks) {
  ClosTopology topo(32, 8, 4);
  topo.enable_only(Layer::kToR, 8);
  topo.enable_only(Layer::kAgg, 0);
  const auto demands = make_demands(32, 500'000, 50.0);
  const auto assignment = assign_vips(topo, demands);
  EXPECT_EQ(assignment.unassigned, 0u);
  for (const auto layer : assignment.vip_layer) {
    EXPECT_NE(layer, Layer::kAgg);  // nothing may land on a disabled layer
  }
}

TEST(SwitchFailure, BrokenConnsScaleWithStaleFraction) {
  ClosTopology topo(16, 4, 2);
  const auto demands = make_demands(32, 1'000'000, 10.0);
  const auto assignment = assign_vips(topo, demands);
  // Pick an enabled ToR switch.
  const auto none = switch_failure_broken_conns(topo, assignment, demands, 0, 0.0);
  const auto some = switch_failure_broken_conns(topo, assignment, demands, 0, 0.1);
  const auto all = switch_failure_broken_conns(topo, assignment, demands, 0, 1.0);
  EXPECT_EQ(none, 0u);
  EXPECT_GT(all, some);
  EXPECT_NEAR(static_cast<double>(some) * 10.0, static_cast<double>(all),
              static_cast<double>(all) * 0.01 + 10);
}

TEST(SwitchFailure, InvalidSwitchIsZero) {
  ClosTopology topo(4, 2, 2);
  const auto demands = make_demands(4, 1000, 1.0);
  const auto assignment = assign_vips(topo, demands);
  EXPECT_EQ(switch_failure_broken_conns(topo, assignment, demands, -1, 0.5), 0u);
  EXPECT_EQ(switch_failure_broken_conns(topo, assignment, demands, 999, 0.5), 0u);
}

TEST(FormatAssignment, ProducesReadableSummary) {
  ClosTopology topo(4, 2, 2);
  const auto demands = make_demands(4, 100'000, 5.0);
  const auto assignment = assign_vips(topo, demands);
  const auto text = format_assignment(topo, assignment);
  EXPECT_NE(text.find("ToR"), std::string::npos);
  EXPECT_NE(text.find("max SRAM utilization"), std::string::npos);
}

}  // namespace
}  // namespace silkroad::deploy
