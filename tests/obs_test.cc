#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "core/silkroad_switch.h"
#include "lb/slb.h"
#include "obs/exporters.h"
#include "obs/journey.h"
#include "obs/metrics.h"
#include "obs/sampling_profiler.h"
#include "obs/scrape_server.h"
#include "obs/sharded.h"
#include "obs/stage_profiler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace silkroad::obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, SameSeriesReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.counter("silkroad_x_total", "help");
  Counter* b = registry.counter("silkroad_x_total");
  EXPECT_EQ(a, b);
  a->inc(3);
  b->inc();
  EXPECT_EQ(a->value(), 4u);
  EXPECT_EQ(registry.series_count(), 1u);
}

TEST(MetricsRegistry, LabelsDistinguishSeries) {
  MetricsRegistry registry;
  Counter* green = registry.counter("pkts", "", R"(color="green")");
  Counter* red = registry.counter("pkts", "", R"(color="red")");
  EXPECT_NE(green, red);
  green->inc(2);
  red->inc(5);
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("pkts", R"(color="green")"), 2);
  EXPECT_EQ(snap.value_of("pkts", R"(color="red")"), 5);
  EXPECT_EQ(snap.value_of("pkts", R"(color="blue")", -1), -1);
}

TEST(MetricsRegistry, SnapshotIsSortedAndDeterministic) {
  MetricsRegistry registry;
  registry.counter("zeta");
  registry.counter("alpha");
  registry.gauge("mid");
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      snap.samples.begin(), snap.samples.end(),
      [](const MetricSample& a, const MetricSample& b) {
        return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
      }));
}

TEST(MetricsRegistry, CallbackIsEvaluatedAtSnapshotTime) {
  MetricsRegistry registry;
  double level = 1.0;
  registry.register_callback("depth", MetricKind::kGauge,
                             [&level] { return level; });
  EXPECT_EQ(registry.snapshot().value_of("depth"), 1.0);
  level = 42.0;
  EXPECT_EQ(registry.snapshot().value_of("depth"), 42.0);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("hits");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter->inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
}

TEST(Counter, OverflowWrapsModulo64Bits) {
  Counter c;
  c.inc(~std::uint64_t{0});  // 2^64 - 1
  c.inc(5);
  EXPECT_EQ(c.value(), 4u);
}

TEST(MetricsRegistry, AggregateSumsMatchingSeries) {
  MetricsRegistry a, b;
  a.counter("pkts")->inc(10);
  b.counter("pkts")->inc(32);
  a.gauge("occ")->set(0.5);
  b.gauge("occ")->set(0.25);
  b.counter("only_b")->inc(7);
  const Snapshot merged =
      MetricsRegistry::aggregate({a.snapshot(), b.snapshot()});
  EXPECT_EQ(merged.value_of("pkts"), 42);
  EXPECT_EQ(merged.value_of("occ"), 0.75);
  EXPECT_EQ(merged.value_of("only_b"), 7);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, SmallValuesGetExactUnitBuckets) {
  Histogram h(Histogram::Options{.log2_subdivisions = 2});  // 4 subdivisions
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(h.bucket_index(v), v) << "value " << v;
    EXPECT_EQ(h.bucket_lower_bound(v), v);
  }
}

TEST(Histogram, EveryValueFallsInsideItsBucketBounds) {
  Histogram h(Histogram::Options{.log2_subdivisions = 2});
  const std::uint64_t probes[] = {
      0,    1,    3,         4,             5, 7, 8, 9, 15, 16, 17, 100,
      1023, 1024, 1'000'000, 1'000'000'000, std::uint64_t{1} << 40,
      ~std::uint64_t{0}};
  for (const std::uint64_t v : probes) {
    const std::size_t i = h.bucket_index(v);
    ASSERT_LT(i, h.bucket_count()) << "value " << v;
    EXPECT_LE(h.bucket_lower_bound(i), v) << "value " << v;
    if (i + 1 < h.bucket_count()) {
      EXPECT_LT(v, h.bucket_lower_bound(i + 1)) << "value " << v;
    }
  }
}

TEST(Histogram, BucketBoundsAreMonotone) {
  Histogram h(Histogram::Options{.log2_subdivisions = 2});
  for (std::size_t i = 0; i + 1 < h.bucket_count(); ++i) {
    EXPECT_LT(h.bucket_lower_bound(i), h.bucket_lower_bound(i + 1))
        << "bucket " << i;
  }
}

TEST(Histogram, CountAndSumTrackRecords) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  h->record(1);
  h->record(100);
  h->record(10'000);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 10'101u);
  const Snapshot snap = registry.snapshot();
  const MetricSample* sample = snap.find("lat");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricKind::kHistogram);
  EXPECT_EQ(sample->count, 3u);
  ASSERT_FALSE(sample->buckets.empty());
  // Buckets are cumulative: the last non-empty bucket holds the full count.
  EXPECT_EQ(sample->buckets.back().cumulative_count, 3u);
}

// ---------------------------------------------------------------------------
// Histogram quantiles (Snapshot::quantile / histogram_quantile)
// ---------------------------------------------------------------------------

TEST(HistogramQuantile, ExactForUnitBuckets) {
  // Default log2_subdivisions=2: values below 8 land in exact unit buckets,
  // so interpolated quantiles match the textbook percentile exactly.
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  for (std::uint64_t v = 1; v <= 4; ++v) h->record(v);
  const Snapshot snap = registry.snapshot();
  // rank(q) = max(1, q*4); each unit bucket spans (v-1, v].
  EXPECT_DOUBLE_EQ(snap.quantile("lat", "", 0.25), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile("lat", "", 0.50), 2.0);
  EXPECT_DOUBLE_EQ(snap.quantile("lat", "", 0.75), 3.0);
  EXPECT_DOUBLE_EQ(snap.quantile("lat", "", 1.00), 4.0);
  EXPECT_NEAR(snap.quantile("lat", "", 0.99), 3.96, 1e-9);
  // q below the first sample's rank clamps to the first value's bucket.
  EXPECT_LE(snap.quantile("lat", "", 0.0), 1.0);
}

TEST(HistogramQuantile, FloorMarkerKeepsEstimateInsideTrueBucket) {
  // 400 lands in bucket [384, 447] (width 64). Without the floor-marker
  // bucket the interpolation span would stretch down to 0 and p50 would
  // come out near 224; with it the error is bounded by the bucket width.
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  for (int i = 0; i < 100; ++i) h->record(400);
  const Snapshot snap = registry.snapshot();
  EXPECT_NEAR(snap.quantile("lat", "", 0.50), 400.0, 64.0);
  EXPECT_NEAR(snap.quantile("lat", "", 0.99), 400.0, 64.0);
}

TEST(HistogramQuantile, SingleBucketKeepsAllQuantilesInsideIt) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  for (int i = 0; i < 100; ++i) h->record(700);  // one log-linear bucket
  const Snapshot snap = registry.snapshot();
  const std::size_t bucket =
      hdr_bucket_index(700, Histogram::Options{}.log2_subdivisions);
  const double lower = static_cast<double>(
      hdr_bucket_lower_bound(bucket, Histogram::Options{}.log2_subdivisions));
  const double upper = static_cast<double>(hdr_bucket_lower_bound(
      bucket + 1, Histogram::Options{}.log2_subdivisions));
  for (const double q : {0.01, 0.5, 0.99, 0.999}) {
    const double est = snap.quantile("lat", "", q);
    EXPECT_GE(est, lower) << "q=" << q;
    EXPECT_LE(est, upper) << "q=" << q;
  }
}

TEST(HistogramQuantile, OverflowBucketReturnsLastFiniteEdge) {
  // Values beyond the top bounded bucket land in the unbounded overflow
  // bucket, which has no upper edge to interpolate toward: every quantile
  // that falls there reports the last finite edge instead of garbage.
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  for (int i = 0; i < 10; ++i) h->record(~std::uint64_t{0});
  const Snapshot snap = registry.snapshot();
  const double p50 = snap.quantile("lat", "", 0.50);
  const double p999 = snap.quantile("lat", "", 0.999);
  EXPECT_TRUE(std::isfinite(p50));
  EXPECT_GT(p50, 0.0);
  EXPECT_DOUBLE_EQ(p50, p999);  // no spread inside the unbounded bucket
}

TEST(HistogramQuantile, ExactBoundaryValueStaysInItsBucket) {
  // A power-of-two boundary value belongs to exactly one bucket; the
  // quantile estimate must stay inside that bucket's bounds.
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  const std::uint64_t boundary = 256;
  for (int i = 0; i < 50; ++i) h->record(boundary);
  const std::size_t sub = Histogram::Options{}.log2_subdivisions;
  const std::size_t bucket = hdr_bucket_index(boundary, sub);
  EXPECT_GE(boundary, hdr_bucket_lower_bound(bucket, sub));
  EXPECT_LT(boundary, hdr_bucket_lower_bound(bucket + 1, sub));
  const double est = registry.snapshot().quantile("lat", "", 0.5);
  EXPECT_GE(est, static_cast<double>(hdr_bucket_lower_bound(bucket, sub)));
  EXPECT_LE(est, static_cast<double>(hdr_bucket_lower_bound(bucket + 1, sub)));
}

TEST(HistogramQuantile, NanForMissingEmptyOrNonHistogram) {
  MetricsRegistry registry;
  registry.gauge("g")->set(5);
  registry.histogram("empty");
  const Snapshot snap = registry.snapshot();
  EXPECT_TRUE(std::isnan(snap.quantile("nope", "", 0.5)));
  EXPECT_TRUE(std::isnan(snap.quantile("g", "", 0.5)));
  EXPECT_TRUE(std::isnan(snap.quantile("empty", "", 0.5)));
}

// ---------------------------------------------------------------------------
// MetricsRegistry::aggregate edge cases
// ---------------------------------------------------------------------------

TEST(Aggregate, DisjointLabelSetsStaySeparate) {
  MetricsRegistry a, b;
  a.counter("pkts", "", R"(color="green")")->inc(2);
  b.counter("pkts", "", R"(color="red")")->inc(5);
  const Snapshot merged =
      MetricsRegistry::aggregate({a.snapshot(), b.snapshot()});
  ASSERT_EQ(merged.samples.size(), 2u);
  EXPECT_EQ(merged.value_of("pkts", R"(color="green")"), 2);
  EXPECT_EQ(merged.value_of("pkts", R"(color="red")"), 5);
}

TEST(Aggregate, PullCallbacksEvaluatePerSnapshotAndSum) {
  // Each snapshot() evaluates the pull callback once; aggregating two
  // snapshots of the same registry therefore double-counts by design —
  // aggregate() is for snapshots of *distinct* registries.
  MetricsRegistry registry;
  int calls = 0;
  registry.register_callback("depth", MetricKind::kGauge,
                             [&calls] { return static_cast<double>(++calls); });
  const Snapshot first = registry.snapshot();
  const Snapshot second = registry.snapshot();
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(first.value_of("depth"), 1.0);
  EXPECT_EQ(second.value_of("depth"), 2.0);
  const Snapshot merged = MetricsRegistry::aggregate({first, second});
  EXPECT_EQ(merged.value_of("depth"), 3.0);
}

TEST(Aggregate, EmptySnapshotsMergeToIdentity) {
  EXPECT_TRUE(MetricsRegistry::aggregate({}).samples.empty());
  MetricsRegistry registry;
  registry.counter("pkts")->inc(9);
  const Snapshot merged =
      MetricsRegistry::aggregate({Snapshot{}, registry.snapshot(), Snapshot{}});
  ASSERT_EQ(merged.samples.size(), 1u);
  EXPECT_EQ(merged.value_of("pkts"), 9);
}

TEST(Aggregate, HistogramBucketsMergeCumulatively) {
  MetricsRegistry a, b;
  Histogram* ha = a.histogram("lat");
  Histogram* hb = b.histogram("lat");
  for (int i = 0; i < 10; ++i) ha->record(2);
  for (int i = 0; i < 10; ++i) hb->record(1000);
  const Snapshot merged =
      MetricsRegistry::aggregate({a.snapshot(), b.snapshot()});
  const MetricSample* lat = merged.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 20u);
  EXPECT_EQ(lat->buckets.back().cumulative_count, 20u);
  // Half the mass at 2, half near 1000: the median sits between them and
  // p99 lands in 1000's bucket.
  const double p99 = histogram_quantile(*lat, 0.99);
  EXPECT_NEAR(p99, 1000.0, 256.0);
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

TEST(TraceRing, WraparoundKeepsNewestEvents) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    ring.record_at(static_cast<sim::Time>(i), TraceEventKind::kLearn, kNoScope,
                   kNoVersion, i);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].arg0, i + 2) << "oldest-first order";
  }
}

TEST(TraceRing, InternIsIdempotentAndFindable) {
  TraceRing ring(8);
  const std::uint32_t a = ring.intern("20.0.0.1:80");
  const std::uint32_t b = ring.intern("20.0.0.1:80");
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 1u);
  EXPECT_EQ(ring.find_scope("20.0.0.1:80"), a);
  EXPECT_EQ(ring.find_scope("never-interned"), std::nullopt);
  EXPECT_EQ(ring.scope_name(a), "20.0.0.1:80");
}

TEST(TraceRing, TailForFiltersByScopeAndVersion) {
  TraceRing ring(16);
  const std::uint32_t vip1 = ring.intern("vip1");
  const std::uint32_t vip2 = ring.intern("vip2");
  ring.record(TraceEventKind::kUpdateFlip, vip1, 3);
  ring.record(TraceEventKind::kUpdateFlip, vip1, 4);
  ring.record(TraceEventKind::kUpdateFlip, vip2, 3);
  ring.record(TraceEventKind::kLearn, vip1);  // version-less event of vip1

  const auto all_vip1 = ring.tail_for(vip1, std::nullopt, 16);
  EXPECT_EQ(all_vip1.size(), 3u);

  const auto v3 = ring.tail_for(vip1, 3, 16);
  ASSERT_EQ(v3.size(), 2u);  // the v=3 flip plus the version-less learn
  EXPECT_EQ(v3[0].version, 3u);
  EXPECT_EQ(v3[1].kind, TraceEventKind::kLearn);

  const auto limited = ring.tail_for(vip1, std::nullopt, 2);
  ASSERT_EQ(limited.size(), 2u);
  EXPECT_EQ(limited[1].kind, TraceEventKind::kLearn);  // newest retained
}

TEST(TraceRing, ClockStampsEvents) {
  sim::Time now = 0;
  TraceRing ring(4, [&now] { return now; });
  now = 1500;
  ring.record(TraceEventKind::kLearn);
  EXPECT_EQ(ring.events().at(0).at, 1500);
}

// ---------------------------------------------------------------------------
// Exporters (golden outputs)
// ---------------------------------------------------------------------------

TEST(Exporters, PrometheusGolden) {
  MetricsRegistry registry;
  registry.counter("silkroad_packets_total", "Packets processed")->inc(12);
  registry.gauge("silkroad_occupancy", "", R"(stage="1")")->set(0.5);
  const std::string out = to_prometheus(registry.snapshot());
  EXPECT_EQ(out,
            "# TYPE silkroad_occupancy gauge\n"
            "silkroad_occupancy{stage=\"1\"} 0.5\n"
            "# HELP silkroad_packets_total Packets processed\n"
            "# TYPE silkroad_packets_total counter\n"
            "silkroad_packets_total 12\n");
}

TEST(Exporters, PrometheusHistogramHasCumulativeBucketsAndInf) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat_ns");
  h->record(1);
  h->record(1);
  h->record(1000);
  const std::string out = to_prometheus(registry.snapshot());
  EXPECT_NE(out.find("# TYPE lat_ns histogram"), std::string::npos);
  EXPECT_NE(out.find("lat_ns_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(out.find("lat_ns_sum 1002"), std::string::npos);
  EXPECT_NE(out.find("lat_ns_count 3"), std::string::npos);
}

TEST(Exporters, JsonGolden) {
  MetricsRegistry registry;
  registry.counter("pkts")->inc(7);
  const std::string out = to_json(registry.snapshot());
  EXPECT_EQ(out,
            "{\"metrics\":[\n"
            "  {\"name\":\"pkts\",\"labels\":\"\",\"kind\":\"counter\","
            "\"value\":7}\n"
            "]}\n");
}

TEST(Exporters, ChromeTracePairsStep1WithFinish) {
  TraceRing ring(16);
  const std::uint32_t vip = ring.intern("20.0.0.1:80");
  ring.record_at(1000, TraceEventKind::kUpdateStep1Open, vip, 2, 1, 2);
  ring.record_at(2000, TraceEventKind::kUpdateFlip, vip, 2, 1, 2);
  ring.record_at(3000, TraceEventKind::kUpdateFinish, vip, 2);
  const std::string out = to_chrome_trace(ring);
  // Span open (B) before instant flip before span close (E), on the VIP track.
  const auto open = out.find("\"ph\":\"B\"");
  const auto flip = out.find("\"name\":\"update-flip\"");
  const auto close = out.find("\"ph\":\"E\"");
  EXPECT_NE(open, std::string::npos);
  EXPECT_NE(flip, std::string::npos);
  EXPECT_NE(close, std::string::npos);
  EXPECT_LT(open, flip);
  EXPECT_LT(flip, close);
  EXPECT_NE(out.find("\"args\":{\"name\":\"20.0.0.1:80\"}"),
            std::string::npos);
  EXPECT_NE(out.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// TimeSeriesRecorder
// ---------------------------------------------------------------------------

TEST(TimeSeriesRecorder, CounterRawAndRateSeries) {
  MetricsRegistry registry;
  Counter* c = registry.counter("pkts");
  TimeSeriesRecorder recorder(registry);
  recorder.sample(0);
  c->inc(100);
  recorder.sample(sim::kSecond);
  c->inc(50);
  recorder.sample(2 * sim::kSecond);

  const auto raw = recorder.find("pkts");
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_EQ(raw[0].value, 0);
  EXPECT_EQ(raw[1].value, 100);
  EXPECT_EQ(raw[2].value, 150);

  const auto rate = recorder.find("pkts:rate");
  ASSERT_EQ(rate.size(), 2u);  // first sample has no previous to diff
  EXPECT_DOUBLE_EQ(rate[0].value, 100.0);  // 100 in 1 s
  EXPECT_DOUBLE_EQ(rate[1].value, 50.0);
  EXPECT_EQ(rate[0].at, sim::kSecond);
  EXPECT_EQ(recorder.sample_count(), 3u);
}

TEST(TimeSeriesRecorder, HistogramIntervalQuantilesAndGaps) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  TimeSeriesRecorder recorder(registry);
  recorder.sample(0);
  for (std::uint64_t v = 1; v <= 4; ++v) h->record(v);
  recorder.sample(sim::kSecond);
  // Quiet interval: no recordings => no derived points (gap, not zero).
  recorder.sample(2 * sim::kSecond);

  const auto p50 = recorder.find("lat:p50");
  ASSERT_EQ(p50.size(), 1u);
  EXPECT_DOUBLE_EQ(p50[0].value, 2.0);  // exact: unit buckets
  const auto p99 = recorder.find("lat:p99");
  ASSERT_EQ(p99.size(), 1u);
  const auto mean = recorder.find("lat:mean");
  ASSERT_EQ(mean.size(), 1u);
  EXPECT_DOUBLE_EQ(mean[0].value, 2.5);  // (1+2+3+4)/4
  const auto count_rate = recorder.find("lat:count_rate");
  ASSERT_EQ(count_rate.size(), 1u);
  EXPECT_DOUBLE_EQ(count_rate[0].value, 4.0);  // 4 records in 1 s
}

TEST(TimeSeriesRecorder, HistogramDeltaIsolatesTheInterval) {
  // The second interval's quantiles must reflect only the second interval's
  // values, even though snapshots are cumulative since boot.
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  TimeSeriesRecorder recorder(registry);
  recorder.sample(0);
  for (int i = 0; i < 100; ++i) h->record(1);
  recorder.sample(sim::kSecond);
  for (int i = 0; i < 100; ++i) h->record(1000);
  recorder.sample(2 * sim::kSecond);

  const auto p50 = recorder.find("lat:p50");
  ASSERT_EQ(p50.size(), 2u);
  EXPECT_NEAR(p50[0].value, 1.0, 1.0);
  EXPECT_NEAR(p50[1].value, 1000.0, 128.0);  // not dragged down by the 1s
}

TEST(TimeSeriesRecorder, CapacityBoundsRetainedPoints) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("occ");
  TimeSeriesRecorder::Options opts;
  opts.capacity = 4;
  TimeSeriesRecorder recorder(registry, opts);
  for (int i = 0; i < 10; ++i) {
    g->set(i);
    recorder.sample(static_cast<sim::Time>(i) * sim::kSecond);
  }
  const auto points = recorder.find("occ");
  ASSERT_EQ(points.size(), 4u);  // oldest evicted
  EXPECT_EQ(points.front().value, 6);
  EXPECT_EQ(points.back().value, 9);
}

TEST(TimeSeriesRecorder, WindowStatsOverLastN) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("occ");
  TimeSeriesRecorder recorder(registry);
  const double values[] = {5, 1, 9, 3};
  for (int i = 0; i < 4; ++i) {
    g->set(values[i]);
    recorder.sample(static_cast<sim::Time>(i) * sim::kSecond);
  }
  const auto all = recorder.window("occ");
  EXPECT_EQ(all.count, 4u);
  EXPECT_EQ(all.min, 1);
  EXPECT_EQ(all.max, 9);
  EXPECT_DOUBLE_EQ(all.mean, 4.5);
  const auto last2 = recorder.window("occ", "", 2);
  EXPECT_EQ(last2.count, 2u);
  EXPECT_EQ(last2.min, 3);
  EXPECT_EQ(last2.max, 9);
  EXPECT_EQ(recorder.window("absent").count, 0u);
}

TEST(TimeSeriesRecorder, CsvAndJsonRenderPoints) {
  MetricsRegistry registry;
  registry.counter("pkts")->inc(7);
  TimeSeriesRecorder recorder(registry);
  recorder.sample(sim::kSecond);
  const std::string csv = recorder.to_csv();
  EXPECT_EQ(csv.rfind("t_seconds,name,labels,value\n", 0), 0u);
  EXPECT_NE(csv.find("1,pkts,\"\",7"), std::string::npos);
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("\"interval_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pkts\""), std::string::npos);
  EXPECT_NE(json.find("[1,7]"), std::string::npos);
}

TEST(TimeSeriesRecorder, AttachSamplesOnTheSimClock) {
  sim::Simulator sim;
  MetricsRegistry registry;
  Gauge* g = registry.gauge("occ");
  TimeSeriesRecorder::Options opts;
  opts.interval = 100 * sim::kMillisecond;
  TimeSeriesRecorder recorder(registry, opts);
  recorder.attach(sim, sim.now() + sim::kSecond);  // bounded: sim.run() is ok
  g->set(3);
  sim.run();
  recorder.detach();
  const auto points = recorder.find("occ");
  // Immediate sample at t=0 plus one per 100 ms through t=1 s inclusive.
  EXPECT_EQ(points.size(), 11u);
  EXPECT_EQ(points.back().at, sim::kSecond);
}

// ---------------------------------------------------------------------------
// FlowJourneyTracer
// ---------------------------------------------------------------------------

TEST(FlowJourney, ReconstructsOneFlowWithUpdateContext) {
  TraceRing ring(64);
  const std::uint32_t vip = ring.intern("20.0.0.1:80");
  const std::uint64_t flow = 0xABCDEF0123456789ull;
  ring.record_at(100, TraceEventKind::kLearn, vip, 7, flow);
  ring.record_at(150, TraceEventKind::kUpdateStep1Open, vip, 8, 7, 8);
  ring.record_at(200, TraceEventKind::kCuckooInsert, vip, 7, /*moves=*/0,
                 flow);
  ring.record_at(250, TraceEventKind::kUpdateFlip, vip, 8, 7, 8);
  // Outside [first, last]: must NOT appear as context.
  ring.record_at(900, TraceEventKind::kUpdateFinish, vip, 8);
  // A different flow: must not leak into this journey.
  ring.record_at(120, TraceEventKind::kLearn, vip, 7, flow + 1);

  const auto journey = FlowJourneyTracer::journey_of(ring, flow);
  ASSERT_TRUE(journey.has_value());
  EXPECT_EQ(journey->flow_id, flow);
  EXPECT_EQ(journey->scope, vip);
  EXPECT_EQ(journey->version, 7u);
  EXPECT_EQ(journey->first, 100u);
  EXPECT_EQ(journey->last, 200u);
  ASSERT_EQ(journey->events.size(), 2u);
  EXPECT_EQ(journey->events[0].kind, TraceEventKind::kLearn);
  EXPECT_EQ(journey->events[1].kind, TraceEventKind::kCuckooInsert);
  EXPECT_TRUE(journey->installed);
  EXPECT_FALSE(journey->software_fallback);
  ASSERT_EQ(journey->context.size(), 1u);  // only the in-window step1
  EXPECT_EQ(journey->context[0].kind, TraceEventKind::kUpdateStep1Open);

  EXPECT_EQ(FlowJourneyTracer::journey_of(ring, 0x1234).has_value(), false);
}

TEST(FlowJourney, ReconstructCapsFlowsFirstSeen) {
  TraceRing ring(64);
  for (std::uint64_t f = 1; f <= 10; ++f) {
    ring.record_at(f, TraceEventKind::kLearn, kNoScope, kNoVersion, f);
  }
  JourneyOptions options;
  options.max_flows = 3;
  const auto journeys = FlowJourneyTracer::reconstruct(ring, options);
  ASSERT_EQ(journeys.size(), 3u);
  EXPECT_EQ(journeys[0].flow_id, 1u);  // first-seen order
  EXPECT_EQ(journeys[2].flow_id, 3u);
}

TEST(FlowJourney, ChromeTraceHasFlowTracksAndInstallSpan) {
  TraceRing ring(64);
  const std::uint32_t vip = ring.intern("20.0.0.1:80");
  const std::uint64_t flow = 0x42;
  ring.record_at(100, TraceEventKind::kLearn, vip, 1, flow);
  ring.record_at(150, TraceEventKind::kUpdateFlip, vip, 2, 1, 2);
  ring.record_at(200, TraceEventKind::kCuckooInsert, vip, 1, 0, flow);
  const auto journeys = FlowJourneyTracer::reconstruct(ring);
  ASSERT_EQ(journeys.size(), 1u);
  const std::string out = FlowJourneyTracer::to_chrome_trace(ring, journeys);
  EXPECT_NE(out.find("flow 0x0000000000000042"), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);  // install span
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);  // event instants
  EXPECT_NE(out.find("ctx:"), std::string::npos);  // overlapping flip
  const std::string text = FlowJourneyTracer::format(ring, journeys[0]);
  EXPECT_NE(text.find("installed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ScrapeServer (real sockets on loopback, ephemeral port)
// ---------------------------------------------------------------------------

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ScrapeServer, ServesAllEndpointsOverLoopback) {
  MetricsRegistry registry;
  registry.counter("silkroad_packets_total")->inc(12);
  registry.histogram("lat_ns")->record(500);
  registry.gauge("silkroad_dip_active_conns", "", "dip=\"d\",vip=\"V\"")
      ->set(4);
  TimeSeriesRecorder recorder(registry);
  recorder.sample(sim::kSecond);

  ScrapeServer server;  // port 0 = ephemeral
  server.handle("/metrics", "text/plain; version=0.0.4",
                [&registry] { return to_prometheus(registry.snapshot()); });
  server.handle("/timeseries.json", "application/json",
                [&recorder] { return recorder.to_json(); });
  server.handle("/tables", "application/json",
                [] { return std::string("{\"conn_table\":{}}"); });
  server.handle("/profile", "application/json", [&registry] {
    return to_profile_json(registry.snapshot());
  });
  server.handle("/imbalance.json", "application/json",
                [&recorder] { return recorder.imbalance_json(); });
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0u);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("silkroad_packets_total 12"), std::string::npos);

  const std::string healthz = http_get(server.port(), "/healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("ok"), std::string::npos);

  const std::string series = http_get(server.port(), "/timeseries.json");
  EXPECT_NE(series.find("200 OK"), std::string::npos);
  EXPECT_NE(series.find("\"interval_ns\""), std::string::npos);

  const std::string tables = http_get(server.port(), "/tables");
  EXPECT_NE(tables.find("200 OK"), std::string::npos);
  EXPECT_NE(tables.find("conn_table"), std::string::npos);

  const std::string profile = http_get(server.port(), "/profile");
  EXPECT_NE(profile.find("200 OK"), std::string::npos);
  EXPECT_NE(profile.find("\"name\":\"lat_ns\""), std::string::npos);
  EXPECT_NE(profile.find("\"p999\":"), std::string::npos);

  const std::string imbalance = http_get(server.port(), "/imbalance.json");
  EXPECT_NE(imbalance.find("200 OK"), std::string::npos);
  EXPECT_NE(imbalance.find("\"vip\":\"V\""), std::string::npos);
  EXPECT_NE(imbalance.find("\"max_mean\""), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  EXPECT_GE(server.requests_served(), 7u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(ScrapeServer, UnknownPathAnswersWithRouteIndex) {
  ScrapeServer server;
  server.handle("/fleet", "text/plain", [] { return std::string("fleet\n"); });
  server.handle("/capacity", "text/plain", [] { return std::string("{}"); });
  server.handle("/profile", "application/json",
                [] { return std::string("{}"); });
  server.handle("/imbalance.json", "application/json",
                [] { return std::string("{}"); });
  server.handle_prefix("/update", "text/plain",
                       [](const std::string&) { return std::string("{}"); });
  ASSERT_TRUE(server.start());

  // A mistyped scrape is self-correcting: the 404 body indexes every
  // registered route (sorted — routes_ is a std::map), including the
  // implicit /healthz and the prefix routes.
  const std::string missing = http_get(server.port(), "/flee");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_NE(missing.find("not found: /flee"), std::string::npos);
  EXPECT_NE(missing.find("/fleet"), std::string::npos);
  EXPECT_NE(missing.find("/capacity"), std::string::npos);
  EXPECT_NE(missing.find("/profile"), std::string::npos);
  EXPECT_NE(missing.find("/imbalance.json"), std::string::npos);
  EXPECT_NE(missing.find("/healthz"), std::string::npos);
  EXPECT_NE(missing.find("/update/<id>"), std::string::npos);
  server.stop();
}

TEST(ScrapeServer, EnvPortParsing) {
  std::uint16_t port = 1;
  ::unsetenv("SILKROAD_SCRAPE_PORT");
  EXPECT_FALSE(scrape_port_from_env(port));
  ::setenv("SILKROAD_SCRAPE_PORT", "9100", 1);
  EXPECT_TRUE(scrape_port_from_env(port));
  EXPECT_EQ(port, 9100u);
  ::setenv("SILKROAD_SCRAPE_PORT", "0", 1);
  EXPECT_TRUE(scrape_port_from_env(port));
  EXPECT_EQ(port, 0u);
  ::setenv("SILKROAD_SCRAPE_PORT", "70000", 1);
  EXPECT_FALSE(scrape_port_from_env(port));
  ::setenv("SILKROAD_SCRAPE_PORT", "not-a-port", 1);
  EXPECT_FALSE(scrape_port_from_env(port));
  ::unsetenv("SILKROAD_SCRAPE_PORT");
}

// ---------------------------------------------------------------------------
// Switch integration: event order and zero double-counting
// ---------------------------------------------------------------------------

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back(
        {net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

net::Packet packet_of(std::uint32_t client, bool syn) {
  net::Packet p;
  p.flow = {{net::IpAddress::v4(0x0B000000 + client), 1234}, vip_ep(),
            net::Protocol::kTcp};
  p.syn = syn;
  p.size_bytes = 100;
  return p;
}

core::SilkRoadSwitch::Config small_config() {
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(4096);
  config.learning = {.capacity = 64, .timeout = sim::kMillisecond};
  config.cpu = {.tasks_per_second = 200'000.0};
  return config;
}

TEST(SwitchTelemetry, PccUpdateEventsArriveInProtocolOrder) {
  sim::Simulator sim;
  core::SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(8);
  sw.add_vip(vip_ep(), dips);
  for (std::uint32_t i = 0; i < 32; ++i) sw.process_packet(packet_of(i, true));
  sw.request_update({sim.now(), vip_ep(), dips[0],
                     workload::UpdateAction::kRemoveDip,
                     workload::UpdateCause::kServiceUpgrade});
  sim.run();

  const auto scope = sw.trace().find_scope(vip_ep().to_string());
  ASSERT_TRUE(scope.has_value());
  std::vector<TraceEventKind> protocol;
  for (const auto& event : sw.trace().events()) {
    if (event.scope != *scope) continue;
    if (event.kind == TraceEventKind::kUpdateStep1Open ||
        event.kind == TraceEventKind::kUpdateFlip ||
        event.kind == TraceEventKind::kUpdateFinish) {
      protocol.push_back(event.kind);
    }
  }
  ASSERT_EQ(protocol.size(), 3u) << "one update => step1, flip, finish";
  EXPECT_EQ(protocol[0], TraceEventKind::kUpdateStep1Open);
  EXPECT_EQ(protocol[1], TraceEventKind::kUpdateFlip);
  EXPECT_EQ(protocol[2], TraceEventKind::kUpdateFinish);
}

TEST(SwitchTelemetry, LegacyStatsViewMatchesRegistryExactly) {
  sim::Simulator sim;
  core::SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(8);
  sw.add_vip(vip_ep(), dips);
  for (std::uint32_t i = 0; i < 200; ++i) {
    sw.process_packet(packet_of(i, true));
    sw.process_packet(packet_of(i, false));
  }
  sw.request_update({sim.now(), vip_ep(), dips[1],
                     workload::UpdateAction::kRemoveDip,
                     workload::UpdateCause::kServiceUpgrade});
  sim.run();

  // The Stats struct is a snapshot view over the registry: every field must
  // equal the registry series it is assembled from — same source, counted
  // exactly once.
  const auto stats = sw.stats();
  const Snapshot snap = sw.metrics().snapshot();
  EXPECT_EQ(static_cast<double>(stats.packets),
            snap.value_of("silkroad_packets_total"));
  EXPECT_EQ(static_cast<double>(stats.conn_table_hits),
            snap.value_of("silkroad_conn_table_hits_total"));
  EXPECT_EQ(static_cast<double>(stats.learns),
            snap.value_of("silkroad_learns_total"));
  EXPECT_EQ(static_cast<double>(stats.inserts),
            snap.value_of("silkroad_inserts_total"));
  EXPECT_EQ(static_cast<double>(stats.updates_completed),
            snap.value_of("silkroad_updates_completed_total"));
  EXPECT_GT(stats.packets, 0u);
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_EQ(stats.updates_completed, 1u);

  // Pull gauges are live views of the same structures (no second bookkeeping).
  EXPECT_EQ(snap.value_of("silkroad_connections_installed"),
            static_cast<double>(sw.conn_table().size()));

  // The packet-latency histogram saw exactly one record per processed packet.
  const MetricSample* latency = snap.find("silkroad_packet_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, stats.packets);
}

TEST(SwitchTelemetry, RecorderCapturesInsertLatencyTailUnderChurn) {
  // Acceptance criterion (ISSUE): after a churn phase, the recorder's p99
  // series for ConnTable insert latency is non-empty.
  sim::Simulator sim;
  core::SilkRoadSwitch sw(sim, small_config());
  sw.add_vip(vip_ep(), make_dips(8));
  TimeSeriesRecorder::Options opts;
  opts.interval = 10 * sim::kMillisecond;
  TimeSeriesRecorder recorder(sw.metrics(), opts);
  recorder.attach(sim);
  for (std::uint32_t i = 0; i < 400; ++i) {
    sim.schedule_at(static_cast<sim::Time>(i) * sim::kMillisecond / 4,
                    [&sw, i] { sw.process_packet(packet_of(i, true)); });
  }
  sim.run_until(200 * sim::kMillisecond);
  recorder.detach();
  sim.run();

  EXPECT_FALSE(recorder.find("silkroad_insert_latency_ns:p99").empty());
  EXPECT_FALSE(recorder.find("silkroad_insert_latency_ns:p50").empty());
  EXPECT_FALSE(recorder.find("silkroad_inserts_total:rate").empty());
  // Every sampled p99 is a sane latency (positive, below a second).
  for (const auto& point : recorder.find("silkroad_insert_latency_ns:p99")) {
    EXPECT_GT(point.value, 0.0);
    EXPECT_LT(point.value, 1e9);
  }
}

TEST(SwitchTelemetry, JourneysReconstructFromSwitchTrace) {
  sim::Simulator sim;
  core::SilkRoadSwitch sw(sim, small_config());
  sw.add_vip(vip_ep(), make_dips(8));
  for (std::uint32_t i = 0; i < 64; ++i) sw.process_packet(packet_of(i, true));
  sim.run();

  const auto journeys = FlowJourneyTracer::reconstruct(sw.trace());
  ASSERT_GE(journeys.size(), 32u);
  for (const auto& journey : journeys) {
    EXPECT_NE(journey.flow_id, 0u);
    ASSERT_FALSE(journey.events.empty());
    EXPECT_EQ(journey.events.front().kind, TraceEventKind::kLearn);
    for (std::size_t i = 1; i < journey.events.size(); ++i) {
      EXPECT_LE(journey.events[i - 1].at, journey.events[i].at);
    }
  }
  // The install pipeline ran: some journey reached the ConnTable.
  EXPECT_TRUE(std::any_of(journeys.begin(), journeys.end(),
                          [](const FlowJourney& j) { return j.installed; }));
}

TEST(SwitchTelemetry, TraceDroppedGaugeTracksRingWraparound) {
  sim::Simulator sim;
  core::SilkRoadSwitch sw(sim, small_config());
  EXPECT_EQ(sw.metrics().snapshot().value_of("obs_trace_dropped_total"), 0.0);
  // Overflow the 4096-slot ring directly; the pull counter must follow.
  for (std::uint64_t i = 0; i < 5000; ++i) {
    sw.trace().record(TraceEventKind::kLearn, kNoScope, kNoVersion, i);
  }
  EXPECT_GT(sw.trace().dropped(), 0u);
  EXPECT_EQ(sw.metrics().snapshot().value_of("obs_trace_dropped_total"),
            static_cast<double>(sw.trace().dropped()));
}

// ---------------------------------------------------------------------------
// Sharded counters and histograms (DESIGN.md §14)
// ---------------------------------------------------------------------------

TEST(ShardedCounter, MultithreadedSumIsExact) {
  MetricsRegistry registry;
  ShardedCounter* c = registry.sharded_counter("pkts");
  std::vector<std::thread> threads;
  constexpr std::uint64_t kPerThread = 50'000;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c->inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(), 8 * kPerThread);
  // Snapshot renders it as a plain counter sample — scrapers cannot tell.
  const Snapshot snap = registry.snapshot();
  const MetricSample* sample = snap.find("pkts");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricKind::kCounter);
  EXPECT_EQ(sample->value, static_cast<double>(8 * kPerThread));
}

TEST(ShardedCounter, RegistryReturnsSameHandleForSameSeries) {
  MetricsRegistry registry;
  ShardedCounter* a = registry.sharded_counter("pkts", "help", "vip=\"v\"");
  ShardedCounter* b = registry.sharded_counter("pkts", "", "vip=\"v\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.sharded_counter("pkts", "", "vip=\"w\""));
}

TEST(ShardedHistogram, MatchesPlainHistogramBucketForBucket) {
  MetricsRegistry registry;
  Histogram* plain = registry.histogram("plain_lat");
  ShardedHistogram* sharded = registry.sharded_histogram("sharded_lat");
  sim::Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.uniform_int(1'000'000);
    plain->record(v);
    sharded->record(v);
  }
  ASSERT_EQ(sharded->bucket_count(), plain->bucket_count());
  EXPECT_EQ(sharded->count(), plain->count());
  EXPECT_EQ(sharded->sum(), plain->sum());
  for (std::size_t b = 0; b < plain->bucket_count(); ++b) {
    EXPECT_EQ(sharded->bucket_value(b), plain->bucket_value(b)) << "b=" << b;
    EXPECT_EQ(sharded->bucket_lower_bound(b), plain->bucket_lower_bound(b));
  }
  // Identical buckets mean identical snapshot quantiles.
  const Snapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile("plain_lat", "", 0.99),
                   snap.quantile("sharded_lat", "", 0.99));
}

TEST(ShardedHistogram, ConcurrentRecordsAreLossless) {
  MetricsRegistry registry;
  ShardedHistogram* h = registry.sharded_histogram("lat");
  std::vector<std::thread> threads;
  constexpr std::uint64_t kPerThread = 20'000;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h->record(static_cast<std::uint64_t>(t) * 1000 + 7);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->count(), 8 * kPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < 8; ++t) {
    expected_sum += (static_cast<std::uint64_t>(t) * 1000 + 7) * kPerThread;
  }
  EXPECT_EQ(h->sum(), expected_sum);
}

// ---------------------------------------------------------------------------
// SamplingProfiler
// ---------------------------------------------------------------------------

std::vector<std::size_t> sampled_indices(SamplingProfiler& profiler,
                                         std::size_t packets) {
  std::vector<std::size_t> sampled;
  for (std::size_t i = 0; i < packets; ++i) {
    if (profiler.begin_packet()) sampled.push_back(i);
  }
  return sampled;
}

TEST(SamplingProfiler, SameSeedSamplesTheSamePackets) {
  MetricsRegistry ra;
  MetricsRegistry rb;
  SamplingProfiler a(ra, "p", {"s"});
  SamplingProfiler b(rb, "p", {"s"});
  const auto ia = sampled_indices(a, 100'000);
  const auto ib = sampled_indices(b, 100'000);
  EXPECT_EQ(ia, ib);  // determinism is a first-class property
  EXPECT_EQ(a.sampled_packets(), ia.size());
  // The gap draw is uniform on [1, 2*period), so the rate is ~1/period.
  const double expected = 100'000.0 / static_cast<double>(a.period());
  EXPECT_NEAR(static_cast<double>(ia.size()), expected, 0.2 * expected);

  MetricsRegistry rc;
  SamplingProfiler::Options reseeded;
  reseeded.seed = 0xD1FFULL;
  SamplingProfiler c(rc, "p", {"s"}, reseeded);
  EXPECT_NE(sampled_indices(c, 100'000), ia);  // the seed is the stream
}

TEST(SamplingProfiler, PeriodOneSamplesEveryPacket) {
  MetricsRegistry registry;
  SamplingProfiler::Options every_packet;
  every_packet.period = 1;
  SamplingProfiler profiler(registry, "p", {"s"}, every_packet);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(profiler.begin_packet());
  EXPECT_EQ(profiler.sampled_packets(), 100u);
}

TEST(SamplingProfiler, ReentryIsCountedAndScopeRecordsOnce) {
  MetricsRegistry registry;
  SamplingProfiler::Options every_packet;
  every_packet.period = 1;
  SamplingProfiler profiler(registry, "p", {"pipe"}, every_packet);
  ASSERT_TRUE(profiler.begin_packet());
  EXPECT_TRUE(profiler.enter(0));
  EXPECT_FALSE(profiler.enter(0));  // nested — counted, not charged
  profiler.exit(0, 500);
  profiler.exit(0, 500);  // unmatched — ignored
  const Snapshot snap = registry.snapshot();
  const MetricSample* lat = snap.find("p_stage_latency_ns", "stage=\"pipe\"");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 1u);  // single charge despite the nested enter
  EXPECT_EQ(snap.value_of("p_profiler_reentry_total", "stage=\"pipe\""), 1.0);
}

TEST(SamplingProfiler, StagesAndVipSeriesAreNoOpsWhenNotSampling) {
  MetricsRegistry registry;
  SamplingProfiler::Options sparse;
  sparse.period = 1'000'000;
  SamplingProfiler profiler(registry, "p", {"pipe"}, sparse);
  Histogram* vip = profiler.vip_series("10.0.0.1:80");
  ASSERT_NE(vip, nullptr);
  for (int i = 0; i < 100; ++i) {
    if (profiler.begin_packet()) continue;  // expect: never sampled
    EXPECT_FALSE(profiler.enter(0));
    if (profiler.sampling()) vip->record(1);
  }
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find("p_stage_latency_ns", "stage=\"pipe\"")->count, 0u);
  EXPECT_EQ(snap.find("p_vip_latency_ns", "vip=\"10.0.0.1:80\"")->count, 0u);
}

TEST(StageProfiler, EnterExitGuardsReentry) {
  MetricsRegistry registry;
  StageProfiler profiler(registry, "sp", 2);
  EXPECT_TRUE(profiler.enter(0));
  EXPECT_FALSE(profiler.enter(0));  // re-entry: counted, scope stays open
  EXPECT_TRUE(profiler.enter(1));   // other stages are independent
  profiler.exit(0, 100);
  profiler.exit(1, 50);
  profiler.exit(0, 100);  // unmatched — ignored
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("sp_stage_latency_ns_total", "stage=\"0\""), 100.0);
  EXPECT_EQ(snap.value_of("sp_profiler_reentry_total", "stage=\"0\""), 1.0);
  EXPECT_EQ(snap.value_of("sp_profiler_reentry_total", "stage=\"1\""), 0.0);
}

// ---------------------------------------------------------------------------
// Load-imbalance telemetry
// ---------------------------------------------------------------------------

TEST(TimeSeriesRecorder, ImbalanceFromGaugeLevels) {
  MetricsRegistry registry;
  registry.gauge("silkroad_dip_active_conns", "", "dip=\"a\",vip=\"V\"")
      ->set(10);
  registry.gauge("silkroad_dip_active_conns", "", "dip=\"b\",vip=\"V\"")
      ->set(30);
  registry.gauge("silkroad_dip_active_conns", "", "dip=\"c\",vip=\"W\"")
      ->set(5);
  TimeSeriesRecorder recorder(registry);
  recorder.sample(sim::kSecond);

  const auto v = recorder.imbalance("silkroad_dip_active_conns", "V");
  EXPECT_EQ(v.dips, 2u);
  EXPECT_DOUBLE_EQ(v.mean, 20.0);
  EXPECT_DOUBLE_EQ(v.max, 30.0);
  EXPECT_DOUBLE_EQ(v.max_mean, 1.5);
  EXPECT_DOUBLE_EQ(v.cv, 0.5);  // stddev 10 over mean 20
  // The single-DIP VIP is perfectly balanced by definition.
  const auto w = recorder.imbalance("silkroad_dip_active_conns", "W");
  EXPECT_EQ(w.dips, 1u);
  EXPECT_DOUBLE_EQ(w.max_mean, 1.0);
  EXPECT_DOUBLE_EQ(w.cv, 0.0);
  // Derived series carry the same values, labeled by VIP.
  const auto maxmean = recorder.find(
      "silkroad_dip_active_conns:imbalance_maxmean", "vip=\"V\"");
  ASSERT_EQ(maxmean.size(), 1u);
  EXPECT_DOUBLE_EQ(maxmean[0].value, 1.5);
  // A never-sampled pair reports the zero default.
  EXPECT_EQ(recorder.imbalance("silkroad_dip_active_conns", "nope").dips, 0u);
}

TEST(TimeSeriesRecorder, ImbalanceFromCounterDeltasNeedsTwoSamples) {
  MetricsRegistry registry;
  Counter* a =
      registry.counter("silkroad_dip_new_conns_total", "", "dip=\"a\",vip=\"V\"");
  Counter* b =
      registry.counter("silkroad_dip_new_conns_total", "", "dip=\"b\",vip=\"V\"");
  a->inc(100);
  b->inc(100);
  TimeSeriesRecorder recorder(registry);
  recorder.sample(sim::kSecond);
  // One sample: counters have no interval delta yet — no imbalance point.
  EXPECT_TRUE(recorder
                  .find("silkroad_dip_new_conns_total:imbalance_maxmean",
                        "vip=\"V\"")
                  .empty());
  // Second interval: a gains 30, b gains 10 — the imbalance is the *new*
  // connection skew of that interval, not of the since-boot totals.
  a->inc(30);
  b->inc(10);
  recorder.sample(2 * sim::kSecond);
  const auto stat = recorder.imbalance("silkroad_dip_new_conns_total", "V");
  EXPECT_EQ(stat.dips, 2u);
  EXPECT_DOUBLE_EQ(stat.mean, 20.0);
  EXPECT_DOUBLE_EQ(stat.max_mean, 1.5);
}

TEST(TimeSeriesRecorder, ImbalanceJsonRendersLatestAndWindow) {
  MetricsRegistry registry;
  Gauge* hot =
      registry.gauge("silkroad_dip_active_conns", "", "dip=\"a\",vip=\"V\"");
  registry.gauge("silkroad_dip_active_conns", "", "dip=\"b\",vip=\"V\"")
      ->set(10);
  TimeSeriesRecorder recorder(registry);
  hot->set(10);
  recorder.sample(sim::kSecond);
  hot->set(30);
  recorder.sample(2 * sim::kSecond);

  const std::string json = recorder.imbalance_json();
  EXPECT_NE(json.find("\"metric\":\"silkroad_dip_active_conns\""),
            std::string::npos);
  EXPECT_NE(json.find("\"vip\":\"V\""), std::string::npos);
  EXPECT_NE(json.find("\"max_mean\":1.5"), std::string::npos);  // latest
  EXPECT_NE(json.find("\"window\""), std::string::npos);
  EXPECT_NE(json.find("\"points\":2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// /profile exporter
// ---------------------------------------------------------------------------

TEST(Exporters, ProfileJsonHasQuantilesAndSamplingCounters) {
  MetricsRegistry registry;
  Histogram* lat = registry.histogram("p_stage_latency_ns", "", "stage=\"s\"");
  for (std::uint64_t v = 1; v <= 1000; ++v) lat->record(v);
  registry.histogram("empty_lat");  // count 0 — must be skipped
  registry.counter("p_sampled_packets_total")->inc(10);
  registry.counter("p_profiler_reentry_total", "", "stage=\"s\"")->inc(2);
  registry.counter("unrelated_total")->inc(5);

  const std::string json = to_profile_json(registry.snapshot());
  EXPECT_NE(json.find("\"name\":\"p_stage_latency_ns\""), std::string::npos);
  for (const char* q : {"\"p50\":", "\"p90\":", "\"p99\":", "\"p999\":"}) {
    EXPECT_NE(json.find(q), std::string::npos) << q;
  }
  EXPECT_EQ(json.find("empty_lat"), std::string::npos);
  EXPECT_NE(json.find("\"p_sampled_packets_total\""), std::string::npos);
  EXPECT_NE(json.find("\"p_profiler_reentry_total\""), std::string::npos);
  EXPECT_EQ(json.find("unrelated_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Switch integration: per-DIP telemetry and the sampling profiler
// ---------------------------------------------------------------------------

TEST(SwitchTelemetry, PerDipCountersTrackLearnsAndFinsDrainGauges) {
  sim::Simulator sim;
  core::SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(4);
  sw.add_vip(vip_ep(), dips);
  constexpr std::uint32_t kFlows = 120;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    sw.process_packet(packet_of(i, true));
  }
  sim.run();

  const auto sum_over_dips = [&](const std::string& name) {
    double sum = 0;
    for (const auto& sample : sw.metrics().snapshot().samples) {
      if (sample.name == name) sum += sample.value;
    }
    return sum;
  };
  // Every learned flow was attributed to exactly one DIP.
  EXPECT_EQ(sum_over_dips("silkroad_dip_new_conns_total"),
            static_cast<double>(kFlows));
  EXPECT_EQ(sum_over_dips("silkroad_dip_active_conns"),
            static_cast<double>(kFlows));

  // FINs release the connections; the active gauges must drain to zero
  // while the monotone new-conn counters keep their totals.
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    auto fin = packet_of(i, false);
    fin.fin = true;
    sw.process_packet(fin);
  }
  sim.run();
  EXPECT_EQ(sum_over_dips("silkroad_dip_active_conns"), 0.0);
  EXPECT_EQ(sum_over_dips("silkroad_dip_new_conns_total"),
            static_cast<double>(kFlows));
}

TEST(SwitchTelemetry, SamplingProfilerRecordsStageAndVipLatency) {
  sim::Simulator sim;
  auto config = small_config();
  config.profiler.period = 8;  // dense sampling so a small test sees samples
  core::SilkRoadSwitch sw(sim, config);
  sw.add_vip(vip_ep(), make_dips(4));
  constexpr std::uint32_t kPackets = 400;
  for (std::uint32_t i = 0; i < kPackets; ++i) {
    sw.process_packet(packet_of(i % 50, i < 50));
    sim.run();
  }

  const Snapshot snap = sw.metrics().snapshot();
  const double sampled =
      snap.value_of("silkroad_packet_sampled_packets_total");
  EXPECT_GT(sampled, 0.0);
  EXPECT_LT(sampled, kPackets);
  const MetricSample* stage =
      snap.find("silkroad_packet_stage_latency_ns", "stage=\"pipeline\"");
  ASSERT_NE(stage, nullptr);
  EXPECT_GT(stage->count, 0u);
  EXPECT_LE(stage->count, static_cast<std::uint64_t>(sampled));
  const MetricSample* vip = snap.find("silkroad_packet_vip_latency_ns",
                                      "vip=\"" + vip_ep().to_string() + "\"");
  ASSERT_NE(vip, nullptr);
  EXPECT_EQ(vip->count, static_cast<std::uint64_t>(sampled));
}

TEST(SwitchTelemetry, TelemetryOffLeavesDataPlaneSeriesSilent) {
  sim::Simulator sim;
  auto config = small_config();
  config.data_plane_telemetry = false;
  core::SilkRoadSwitch sw(sim, config);
  sw.add_vip(vip_ep(), make_dips(4));
  for (std::uint32_t i = 0; i < 200; ++i) {
    sw.process_packet(packet_of(i, true));
  }
  sim.run();

  const Snapshot snap = sw.metrics().snapshot();
  EXPECT_EQ(snap.value_of("silkroad_packet_sampled_packets_total"), 0.0);
  for (const auto& sample : snap.samples) {
    EXPECT_NE(sample.name, "silkroad_dip_new_conns_total");
    EXPECT_NE(sample.name, "silkroad_dip_active_conns");
  }
  // The base packet counters are unconditional — telemetry off only
  // disables the *added* profiling layers.
  EXPECT_GT(snap.value_of("silkroad_packets_total"), 0.0);
}

TEST(SlbTelemetry, BindMetricsCountsPacketsPinsAndHits) {
  MetricsRegistry registry;
  lb::SoftwareLoadBalancer slb;
  slb.bind_metrics(registry);
  slb.add_vip(vip_ep(), make_dips(4));
  for (std::uint32_t i = 0; i < 50; ++i) {
    slb.process_packet(packet_of(i, true));   // pin
    slb.process_packet(packet_of(i, false));  // hit
  }
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("silkroad_slb_packets_total"), 100.0);
  EXPECT_EQ(snap.value_of("silkroad_slb_new_conns_total"), 50.0);
  EXPECT_EQ(snap.value_of("silkroad_slb_conn_table_hits_total"), 50.0);
}

}  // namespace
}  // namespace silkroad::obs
