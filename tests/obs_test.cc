#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/silkroad_switch.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace silkroad::obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, SameSeriesReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.counter("silkroad_x_total", "help");
  Counter* b = registry.counter("silkroad_x_total");
  EXPECT_EQ(a, b);
  a->inc(3);
  b->inc();
  EXPECT_EQ(a->value(), 4u);
  EXPECT_EQ(registry.series_count(), 1u);
}

TEST(MetricsRegistry, LabelsDistinguishSeries) {
  MetricsRegistry registry;
  Counter* green = registry.counter("pkts", "", R"(color="green")");
  Counter* red = registry.counter("pkts", "", R"(color="red")");
  EXPECT_NE(green, red);
  green->inc(2);
  red->inc(5);
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("pkts", R"(color="green")"), 2);
  EXPECT_EQ(snap.value_of("pkts", R"(color="red")"), 5);
  EXPECT_EQ(snap.value_of("pkts", R"(color="blue")", -1), -1);
}

TEST(MetricsRegistry, SnapshotIsSortedAndDeterministic) {
  MetricsRegistry registry;
  registry.counter("zeta");
  registry.counter("alpha");
  registry.gauge("mid");
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      snap.samples.begin(), snap.samples.end(),
      [](const MetricSample& a, const MetricSample& b) {
        return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
      }));
}

TEST(MetricsRegistry, CallbackIsEvaluatedAtSnapshotTime) {
  MetricsRegistry registry;
  double level = 1.0;
  registry.register_callback("depth", MetricKind::kGauge,
                             [&level] { return level; });
  EXPECT_EQ(registry.snapshot().value_of("depth"), 1.0);
  level = 42.0;
  EXPECT_EQ(registry.snapshot().value_of("depth"), 42.0);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("hits");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter->inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
}

TEST(Counter, OverflowWrapsModulo64Bits) {
  Counter c;
  c.inc(~std::uint64_t{0});  // 2^64 - 1
  c.inc(5);
  EXPECT_EQ(c.value(), 4u);
}

TEST(MetricsRegistry, AggregateSumsMatchingSeries) {
  MetricsRegistry a, b;
  a.counter("pkts")->inc(10);
  b.counter("pkts")->inc(32);
  a.gauge("occ")->set(0.5);
  b.gauge("occ")->set(0.25);
  b.counter("only_b")->inc(7);
  const Snapshot merged =
      MetricsRegistry::aggregate({a.snapshot(), b.snapshot()});
  EXPECT_EQ(merged.value_of("pkts"), 42);
  EXPECT_EQ(merged.value_of("occ"), 0.75);
  EXPECT_EQ(merged.value_of("only_b"), 7);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, SmallValuesGetExactUnitBuckets) {
  Histogram h(Histogram::Options{.log2_subdivisions = 2});  // 4 subdivisions
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(h.bucket_index(v), v) << "value " << v;
    EXPECT_EQ(h.bucket_lower_bound(v), v);
  }
}

TEST(Histogram, EveryValueFallsInsideItsBucketBounds) {
  Histogram h(Histogram::Options{.log2_subdivisions = 2});
  const std::uint64_t probes[] = {
      0,    1,    3,         4,             5, 7, 8, 9, 15, 16, 17, 100,
      1023, 1024, 1'000'000, 1'000'000'000, std::uint64_t{1} << 40,
      ~std::uint64_t{0}};
  for (const std::uint64_t v : probes) {
    const std::size_t i = h.bucket_index(v);
    ASSERT_LT(i, h.bucket_count()) << "value " << v;
    EXPECT_LE(h.bucket_lower_bound(i), v) << "value " << v;
    if (i + 1 < h.bucket_count()) {
      EXPECT_LT(v, h.bucket_lower_bound(i + 1)) << "value " << v;
    }
  }
}

TEST(Histogram, BucketBoundsAreMonotone) {
  Histogram h(Histogram::Options{.log2_subdivisions = 2});
  for (std::size_t i = 0; i + 1 < h.bucket_count(); ++i) {
    EXPECT_LT(h.bucket_lower_bound(i), h.bucket_lower_bound(i + 1))
        << "bucket " << i;
  }
}

TEST(Histogram, CountAndSumTrackRecords) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  h->record(1);
  h->record(100);
  h->record(10'000);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 10'101u);
  const Snapshot snap = registry.snapshot();
  const MetricSample* sample = snap.find("lat");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricKind::kHistogram);
  EXPECT_EQ(sample->count, 3u);
  ASSERT_FALSE(sample->buckets.empty());
  // Buckets are cumulative: the last non-empty bucket holds the full count.
  EXPECT_EQ(sample->buckets.back().cumulative_count, 3u);
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

TEST(TraceRing, WraparoundKeepsNewestEvents) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    ring.record_at(static_cast<sim::Time>(i), TraceEventKind::kLearn, kNoScope,
                   kNoVersion, i);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].arg0, i + 2) << "oldest-first order";
  }
}

TEST(TraceRing, InternIsIdempotentAndFindable) {
  TraceRing ring(8);
  const std::uint32_t a = ring.intern("20.0.0.1:80");
  const std::uint32_t b = ring.intern("20.0.0.1:80");
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 1u);
  EXPECT_EQ(ring.find_scope("20.0.0.1:80"), a);
  EXPECT_EQ(ring.find_scope("never-interned"), std::nullopt);
  EXPECT_EQ(ring.scope_name(a), "20.0.0.1:80");
}

TEST(TraceRing, TailForFiltersByScopeAndVersion) {
  TraceRing ring(16);
  const std::uint32_t vip1 = ring.intern("vip1");
  const std::uint32_t vip2 = ring.intern("vip2");
  ring.record(TraceEventKind::kUpdateFlip, vip1, 3);
  ring.record(TraceEventKind::kUpdateFlip, vip1, 4);
  ring.record(TraceEventKind::kUpdateFlip, vip2, 3);
  ring.record(TraceEventKind::kLearn, vip1);  // version-less event of vip1

  const auto all_vip1 = ring.tail_for(vip1, std::nullopt, 16);
  EXPECT_EQ(all_vip1.size(), 3u);

  const auto v3 = ring.tail_for(vip1, 3, 16);
  ASSERT_EQ(v3.size(), 2u);  // the v=3 flip plus the version-less learn
  EXPECT_EQ(v3[0].version, 3u);
  EXPECT_EQ(v3[1].kind, TraceEventKind::kLearn);

  const auto limited = ring.tail_for(vip1, std::nullopt, 2);
  ASSERT_EQ(limited.size(), 2u);
  EXPECT_EQ(limited[1].kind, TraceEventKind::kLearn);  // newest retained
}

TEST(TraceRing, ClockStampsEvents) {
  sim::Time now = 0;
  TraceRing ring(4, [&now] { return now; });
  now = 1500;
  ring.record(TraceEventKind::kLearn);
  EXPECT_EQ(ring.events().at(0).at, 1500);
}

// ---------------------------------------------------------------------------
// Exporters (golden outputs)
// ---------------------------------------------------------------------------

TEST(Exporters, PrometheusGolden) {
  MetricsRegistry registry;
  registry.counter("silkroad_packets_total", "Packets processed")->inc(12);
  registry.gauge("silkroad_occupancy", "", R"(stage="1")")->set(0.5);
  const std::string out = to_prometheus(registry.snapshot());
  EXPECT_EQ(out,
            "# TYPE silkroad_occupancy gauge\n"
            "silkroad_occupancy{stage=\"1\"} 0.5\n"
            "# HELP silkroad_packets_total Packets processed\n"
            "# TYPE silkroad_packets_total counter\n"
            "silkroad_packets_total 12\n");
}

TEST(Exporters, PrometheusHistogramHasCumulativeBucketsAndInf) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat_ns");
  h->record(1);
  h->record(1);
  h->record(1000);
  const std::string out = to_prometheus(registry.snapshot());
  EXPECT_NE(out.find("# TYPE lat_ns histogram"), std::string::npos);
  EXPECT_NE(out.find("lat_ns_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(out.find("lat_ns_sum 1002"), std::string::npos);
  EXPECT_NE(out.find("lat_ns_count 3"), std::string::npos);
}

TEST(Exporters, JsonGolden) {
  MetricsRegistry registry;
  registry.counter("pkts")->inc(7);
  const std::string out = to_json(registry.snapshot());
  EXPECT_EQ(out,
            "{\"metrics\":[\n"
            "  {\"name\":\"pkts\",\"labels\":\"\",\"kind\":\"counter\","
            "\"value\":7}\n"
            "]}\n");
}

TEST(Exporters, ChromeTracePairsStep1WithFinish) {
  TraceRing ring(16);
  const std::uint32_t vip = ring.intern("20.0.0.1:80");
  ring.record_at(1000, TraceEventKind::kUpdateStep1Open, vip, 2, 1, 2);
  ring.record_at(2000, TraceEventKind::kUpdateFlip, vip, 2, 1, 2);
  ring.record_at(3000, TraceEventKind::kUpdateFinish, vip, 2);
  const std::string out = to_chrome_trace(ring);
  // Span open (B) before instant flip before span close (E), on the VIP track.
  const auto open = out.find("\"ph\":\"B\"");
  const auto flip = out.find("\"name\":\"update-flip\"");
  const auto close = out.find("\"ph\":\"E\"");
  EXPECT_NE(open, std::string::npos);
  EXPECT_NE(flip, std::string::npos);
  EXPECT_NE(close, std::string::npos);
  EXPECT_LT(open, flip);
  EXPECT_LT(flip, close);
  EXPECT_NE(out.find("\"args\":{\"name\":\"20.0.0.1:80\"}"),
            std::string::npos);
  EXPECT_NE(out.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Switch integration: event order and zero double-counting
// ---------------------------------------------------------------------------

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back(
        {net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

net::Packet packet_of(std::uint32_t client, bool syn) {
  net::Packet p;
  p.flow = {{net::IpAddress::v4(0x0B000000 + client), 1234}, vip_ep(),
            net::Protocol::kTcp};
  p.syn = syn;
  p.size_bytes = 100;
  return p;
}

core::SilkRoadSwitch::Config small_config() {
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(4096);
  config.learning = {.capacity = 64, .timeout = sim::kMillisecond};
  config.cpu = {.tasks_per_second = 200'000.0};
  return config;
}

TEST(SwitchTelemetry, PccUpdateEventsArriveInProtocolOrder) {
  sim::Simulator sim;
  core::SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(8);
  sw.add_vip(vip_ep(), dips);
  for (std::uint32_t i = 0; i < 32; ++i) sw.process_packet(packet_of(i, true));
  sw.request_update({sim.now(), vip_ep(), dips[0],
                     workload::UpdateAction::kRemoveDip,
                     workload::UpdateCause::kServiceUpgrade});
  sim.run();

  const auto scope = sw.trace().find_scope(vip_ep().to_string());
  ASSERT_TRUE(scope.has_value());
  std::vector<TraceEventKind> protocol;
  for (const auto& event : sw.trace().events()) {
    if (event.scope != *scope) continue;
    if (event.kind == TraceEventKind::kUpdateStep1Open ||
        event.kind == TraceEventKind::kUpdateFlip ||
        event.kind == TraceEventKind::kUpdateFinish) {
      protocol.push_back(event.kind);
    }
  }
  ASSERT_EQ(protocol.size(), 3u) << "one update => step1, flip, finish";
  EXPECT_EQ(protocol[0], TraceEventKind::kUpdateStep1Open);
  EXPECT_EQ(protocol[1], TraceEventKind::kUpdateFlip);
  EXPECT_EQ(protocol[2], TraceEventKind::kUpdateFinish);
}

TEST(SwitchTelemetry, LegacyStatsViewMatchesRegistryExactly) {
  sim::Simulator sim;
  core::SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(8);
  sw.add_vip(vip_ep(), dips);
  for (std::uint32_t i = 0; i < 200; ++i) {
    sw.process_packet(packet_of(i, true));
    sw.process_packet(packet_of(i, false));
  }
  sw.request_update({sim.now(), vip_ep(), dips[1],
                     workload::UpdateAction::kRemoveDip,
                     workload::UpdateCause::kServiceUpgrade});
  sim.run();

  // The Stats struct is a snapshot view over the registry: every field must
  // equal the registry series it is assembled from — same source, counted
  // exactly once.
  const auto stats = sw.stats();
  const Snapshot snap = sw.metrics().snapshot();
  EXPECT_EQ(static_cast<double>(stats.packets),
            snap.value_of("silkroad_packets_total"));
  EXPECT_EQ(static_cast<double>(stats.conn_table_hits),
            snap.value_of("silkroad_conn_table_hits_total"));
  EXPECT_EQ(static_cast<double>(stats.learns),
            snap.value_of("silkroad_learns_total"));
  EXPECT_EQ(static_cast<double>(stats.inserts),
            snap.value_of("silkroad_inserts_total"));
  EXPECT_EQ(static_cast<double>(stats.updates_completed),
            snap.value_of("silkroad_updates_completed_total"));
  EXPECT_GT(stats.packets, 0u);
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_EQ(stats.updates_completed, 1u);

  // Pull gauges are live views of the same structures (no second bookkeeping).
  EXPECT_EQ(snap.value_of("silkroad_connections_installed"),
            static_cast<double>(sw.conn_table().size()));

  // The packet-latency histogram saw exactly one record per processed packet.
  const MetricSample* latency = snap.find("silkroad_packet_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, stats.packets);
}

}  // namespace
}  // namespace silkroad::obs
