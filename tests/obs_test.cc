#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "core/silkroad_switch.h"
#include "obs/exporters.h"
#include "obs/journey.h"
#include "obs/metrics.h"
#include "obs/scrape_server.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace silkroad::obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, SameSeriesReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.counter("silkroad_x_total", "help");
  Counter* b = registry.counter("silkroad_x_total");
  EXPECT_EQ(a, b);
  a->inc(3);
  b->inc();
  EXPECT_EQ(a->value(), 4u);
  EXPECT_EQ(registry.series_count(), 1u);
}

TEST(MetricsRegistry, LabelsDistinguishSeries) {
  MetricsRegistry registry;
  Counter* green = registry.counter("pkts", "", R"(color="green")");
  Counter* red = registry.counter("pkts", "", R"(color="red")");
  EXPECT_NE(green, red);
  green->inc(2);
  red->inc(5);
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("pkts", R"(color="green")"), 2);
  EXPECT_EQ(snap.value_of("pkts", R"(color="red")"), 5);
  EXPECT_EQ(snap.value_of("pkts", R"(color="blue")", -1), -1);
}

TEST(MetricsRegistry, SnapshotIsSortedAndDeterministic) {
  MetricsRegistry registry;
  registry.counter("zeta");
  registry.counter("alpha");
  registry.gauge("mid");
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      snap.samples.begin(), snap.samples.end(),
      [](const MetricSample& a, const MetricSample& b) {
        return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
      }));
}

TEST(MetricsRegistry, CallbackIsEvaluatedAtSnapshotTime) {
  MetricsRegistry registry;
  double level = 1.0;
  registry.register_callback("depth", MetricKind::kGauge,
                             [&level] { return level; });
  EXPECT_EQ(registry.snapshot().value_of("depth"), 1.0);
  level = 42.0;
  EXPECT_EQ(registry.snapshot().value_of("depth"), 42.0);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("hits");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter->inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
}

TEST(Counter, OverflowWrapsModulo64Bits) {
  Counter c;
  c.inc(~std::uint64_t{0});  // 2^64 - 1
  c.inc(5);
  EXPECT_EQ(c.value(), 4u);
}

TEST(MetricsRegistry, AggregateSumsMatchingSeries) {
  MetricsRegistry a, b;
  a.counter("pkts")->inc(10);
  b.counter("pkts")->inc(32);
  a.gauge("occ")->set(0.5);
  b.gauge("occ")->set(0.25);
  b.counter("only_b")->inc(7);
  const Snapshot merged =
      MetricsRegistry::aggregate({a.snapshot(), b.snapshot()});
  EXPECT_EQ(merged.value_of("pkts"), 42);
  EXPECT_EQ(merged.value_of("occ"), 0.75);
  EXPECT_EQ(merged.value_of("only_b"), 7);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, SmallValuesGetExactUnitBuckets) {
  Histogram h(Histogram::Options{.log2_subdivisions = 2});  // 4 subdivisions
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(h.bucket_index(v), v) << "value " << v;
    EXPECT_EQ(h.bucket_lower_bound(v), v);
  }
}

TEST(Histogram, EveryValueFallsInsideItsBucketBounds) {
  Histogram h(Histogram::Options{.log2_subdivisions = 2});
  const std::uint64_t probes[] = {
      0,    1,    3,         4,             5, 7, 8, 9, 15, 16, 17, 100,
      1023, 1024, 1'000'000, 1'000'000'000, std::uint64_t{1} << 40,
      ~std::uint64_t{0}};
  for (const std::uint64_t v : probes) {
    const std::size_t i = h.bucket_index(v);
    ASSERT_LT(i, h.bucket_count()) << "value " << v;
    EXPECT_LE(h.bucket_lower_bound(i), v) << "value " << v;
    if (i + 1 < h.bucket_count()) {
      EXPECT_LT(v, h.bucket_lower_bound(i + 1)) << "value " << v;
    }
  }
}

TEST(Histogram, BucketBoundsAreMonotone) {
  Histogram h(Histogram::Options{.log2_subdivisions = 2});
  for (std::size_t i = 0; i + 1 < h.bucket_count(); ++i) {
    EXPECT_LT(h.bucket_lower_bound(i), h.bucket_lower_bound(i + 1))
        << "bucket " << i;
  }
}

TEST(Histogram, CountAndSumTrackRecords) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  h->record(1);
  h->record(100);
  h->record(10'000);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 10'101u);
  const Snapshot snap = registry.snapshot();
  const MetricSample* sample = snap.find("lat");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricKind::kHistogram);
  EXPECT_EQ(sample->count, 3u);
  ASSERT_FALSE(sample->buckets.empty());
  // Buckets are cumulative: the last non-empty bucket holds the full count.
  EXPECT_EQ(sample->buckets.back().cumulative_count, 3u);
}

// ---------------------------------------------------------------------------
// Histogram quantiles (Snapshot::quantile / histogram_quantile)
// ---------------------------------------------------------------------------

TEST(HistogramQuantile, ExactForUnitBuckets) {
  // Default log2_subdivisions=2: values below 8 land in exact unit buckets,
  // so interpolated quantiles match the textbook percentile exactly.
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  for (std::uint64_t v = 1; v <= 4; ++v) h->record(v);
  const Snapshot snap = registry.snapshot();
  // rank(q) = max(1, q*4); each unit bucket spans (v-1, v].
  EXPECT_DOUBLE_EQ(snap.quantile("lat", "", 0.25), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile("lat", "", 0.50), 2.0);
  EXPECT_DOUBLE_EQ(snap.quantile("lat", "", 0.75), 3.0);
  EXPECT_DOUBLE_EQ(snap.quantile("lat", "", 1.00), 4.0);
  EXPECT_NEAR(snap.quantile("lat", "", 0.99), 3.96, 1e-9);
  // q below the first sample's rank clamps to the first value's bucket.
  EXPECT_LE(snap.quantile("lat", "", 0.0), 1.0);
}

TEST(HistogramQuantile, FloorMarkerKeepsEstimateInsideTrueBucket) {
  // 400 lands in bucket [384, 447] (width 64). Without the floor-marker
  // bucket the interpolation span would stretch down to 0 and p50 would
  // come out near 224; with it the error is bounded by the bucket width.
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  for (int i = 0; i < 100; ++i) h->record(400);
  const Snapshot snap = registry.snapshot();
  EXPECT_NEAR(snap.quantile("lat", "", 0.50), 400.0, 64.0);
  EXPECT_NEAR(snap.quantile("lat", "", 0.99), 400.0, 64.0);
}

TEST(HistogramQuantile, NanForMissingEmptyOrNonHistogram) {
  MetricsRegistry registry;
  registry.gauge("g")->set(5);
  registry.histogram("empty");
  const Snapshot snap = registry.snapshot();
  EXPECT_TRUE(std::isnan(snap.quantile("nope", "", 0.5)));
  EXPECT_TRUE(std::isnan(snap.quantile("g", "", 0.5)));
  EXPECT_TRUE(std::isnan(snap.quantile("empty", "", 0.5)));
}

// ---------------------------------------------------------------------------
// MetricsRegistry::aggregate edge cases
// ---------------------------------------------------------------------------

TEST(Aggregate, DisjointLabelSetsStaySeparate) {
  MetricsRegistry a, b;
  a.counter("pkts", "", R"(color="green")")->inc(2);
  b.counter("pkts", "", R"(color="red")")->inc(5);
  const Snapshot merged =
      MetricsRegistry::aggregate({a.snapshot(), b.snapshot()});
  ASSERT_EQ(merged.samples.size(), 2u);
  EXPECT_EQ(merged.value_of("pkts", R"(color="green")"), 2);
  EXPECT_EQ(merged.value_of("pkts", R"(color="red")"), 5);
}

TEST(Aggregate, PullCallbacksEvaluatePerSnapshotAndSum) {
  // Each snapshot() evaluates the pull callback once; aggregating two
  // snapshots of the same registry therefore double-counts by design —
  // aggregate() is for snapshots of *distinct* registries.
  MetricsRegistry registry;
  int calls = 0;
  registry.register_callback("depth", MetricKind::kGauge,
                             [&calls] { return static_cast<double>(++calls); });
  const Snapshot first = registry.snapshot();
  const Snapshot second = registry.snapshot();
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(first.value_of("depth"), 1.0);
  EXPECT_EQ(second.value_of("depth"), 2.0);
  const Snapshot merged = MetricsRegistry::aggregate({first, second});
  EXPECT_EQ(merged.value_of("depth"), 3.0);
}

TEST(Aggregate, EmptySnapshotsMergeToIdentity) {
  EXPECT_TRUE(MetricsRegistry::aggregate({}).samples.empty());
  MetricsRegistry registry;
  registry.counter("pkts")->inc(9);
  const Snapshot merged =
      MetricsRegistry::aggregate({Snapshot{}, registry.snapshot(), Snapshot{}});
  ASSERT_EQ(merged.samples.size(), 1u);
  EXPECT_EQ(merged.value_of("pkts"), 9);
}

TEST(Aggregate, HistogramBucketsMergeCumulatively) {
  MetricsRegistry a, b;
  Histogram* ha = a.histogram("lat");
  Histogram* hb = b.histogram("lat");
  for (int i = 0; i < 10; ++i) ha->record(2);
  for (int i = 0; i < 10; ++i) hb->record(1000);
  const Snapshot merged =
      MetricsRegistry::aggregate({a.snapshot(), b.snapshot()});
  const MetricSample* lat = merged.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 20u);
  EXPECT_EQ(lat->buckets.back().cumulative_count, 20u);
  // Half the mass at 2, half near 1000: the median sits between them and
  // p99 lands in 1000's bucket.
  const double p99 = histogram_quantile(*lat, 0.99);
  EXPECT_NEAR(p99, 1000.0, 256.0);
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

TEST(TraceRing, WraparoundKeepsNewestEvents) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    ring.record_at(static_cast<sim::Time>(i), TraceEventKind::kLearn, kNoScope,
                   kNoVersion, i);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].arg0, i + 2) << "oldest-first order";
  }
}

TEST(TraceRing, InternIsIdempotentAndFindable) {
  TraceRing ring(8);
  const std::uint32_t a = ring.intern("20.0.0.1:80");
  const std::uint32_t b = ring.intern("20.0.0.1:80");
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 1u);
  EXPECT_EQ(ring.find_scope("20.0.0.1:80"), a);
  EXPECT_EQ(ring.find_scope("never-interned"), std::nullopt);
  EXPECT_EQ(ring.scope_name(a), "20.0.0.1:80");
}

TEST(TraceRing, TailForFiltersByScopeAndVersion) {
  TraceRing ring(16);
  const std::uint32_t vip1 = ring.intern("vip1");
  const std::uint32_t vip2 = ring.intern("vip2");
  ring.record(TraceEventKind::kUpdateFlip, vip1, 3);
  ring.record(TraceEventKind::kUpdateFlip, vip1, 4);
  ring.record(TraceEventKind::kUpdateFlip, vip2, 3);
  ring.record(TraceEventKind::kLearn, vip1);  // version-less event of vip1

  const auto all_vip1 = ring.tail_for(vip1, std::nullopt, 16);
  EXPECT_EQ(all_vip1.size(), 3u);

  const auto v3 = ring.tail_for(vip1, 3, 16);
  ASSERT_EQ(v3.size(), 2u);  // the v=3 flip plus the version-less learn
  EXPECT_EQ(v3[0].version, 3u);
  EXPECT_EQ(v3[1].kind, TraceEventKind::kLearn);

  const auto limited = ring.tail_for(vip1, std::nullopt, 2);
  ASSERT_EQ(limited.size(), 2u);
  EXPECT_EQ(limited[1].kind, TraceEventKind::kLearn);  // newest retained
}

TEST(TraceRing, ClockStampsEvents) {
  sim::Time now = 0;
  TraceRing ring(4, [&now] { return now; });
  now = 1500;
  ring.record(TraceEventKind::kLearn);
  EXPECT_EQ(ring.events().at(0).at, 1500);
}

// ---------------------------------------------------------------------------
// Exporters (golden outputs)
// ---------------------------------------------------------------------------

TEST(Exporters, PrometheusGolden) {
  MetricsRegistry registry;
  registry.counter("silkroad_packets_total", "Packets processed")->inc(12);
  registry.gauge("silkroad_occupancy", "", R"(stage="1")")->set(0.5);
  const std::string out = to_prometheus(registry.snapshot());
  EXPECT_EQ(out,
            "# TYPE silkroad_occupancy gauge\n"
            "silkroad_occupancy{stage=\"1\"} 0.5\n"
            "# HELP silkroad_packets_total Packets processed\n"
            "# TYPE silkroad_packets_total counter\n"
            "silkroad_packets_total 12\n");
}

TEST(Exporters, PrometheusHistogramHasCumulativeBucketsAndInf) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat_ns");
  h->record(1);
  h->record(1);
  h->record(1000);
  const std::string out = to_prometheus(registry.snapshot());
  EXPECT_NE(out.find("# TYPE lat_ns histogram"), std::string::npos);
  EXPECT_NE(out.find("lat_ns_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(out.find("lat_ns_sum 1002"), std::string::npos);
  EXPECT_NE(out.find("lat_ns_count 3"), std::string::npos);
}

TEST(Exporters, JsonGolden) {
  MetricsRegistry registry;
  registry.counter("pkts")->inc(7);
  const std::string out = to_json(registry.snapshot());
  EXPECT_EQ(out,
            "{\"metrics\":[\n"
            "  {\"name\":\"pkts\",\"labels\":\"\",\"kind\":\"counter\","
            "\"value\":7}\n"
            "]}\n");
}

TEST(Exporters, ChromeTracePairsStep1WithFinish) {
  TraceRing ring(16);
  const std::uint32_t vip = ring.intern("20.0.0.1:80");
  ring.record_at(1000, TraceEventKind::kUpdateStep1Open, vip, 2, 1, 2);
  ring.record_at(2000, TraceEventKind::kUpdateFlip, vip, 2, 1, 2);
  ring.record_at(3000, TraceEventKind::kUpdateFinish, vip, 2);
  const std::string out = to_chrome_trace(ring);
  // Span open (B) before instant flip before span close (E), on the VIP track.
  const auto open = out.find("\"ph\":\"B\"");
  const auto flip = out.find("\"name\":\"update-flip\"");
  const auto close = out.find("\"ph\":\"E\"");
  EXPECT_NE(open, std::string::npos);
  EXPECT_NE(flip, std::string::npos);
  EXPECT_NE(close, std::string::npos);
  EXPECT_LT(open, flip);
  EXPECT_LT(flip, close);
  EXPECT_NE(out.find("\"args\":{\"name\":\"20.0.0.1:80\"}"),
            std::string::npos);
  EXPECT_NE(out.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// TimeSeriesRecorder
// ---------------------------------------------------------------------------

TEST(TimeSeriesRecorder, CounterRawAndRateSeries) {
  MetricsRegistry registry;
  Counter* c = registry.counter("pkts");
  TimeSeriesRecorder recorder(registry);
  recorder.sample(0);
  c->inc(100);
  recorder.sample(sim::kSecond);
  c->inc(50);
  recorder.sample(2 * sim::kSecond);

  const auto raw = recorder.find("pkts");
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_EQ(raw[0].value, 0);
  EXPECT_EQ(raw[1].value, 100);
  EXPECT_EQ(raw[2].value, 150);

  const auto rate = recorder.find("pkts:rate");
  ASSERT_EQ(rate.size(), 2u);  // first sample has no previous to diff
  EXPECT_DOUBLE_EQ(rate[0].value, 100.0);  // 100 in 1 s
  EXPECT_DOUBLE_EQ(rate[1].value, 50.0);
  EXPECT_EQ(rate[0].at, sim::kSecond);
  EXPECT_EQ(recorder.sample_count(), 3u);
}

TEST(TimeSeriesRecorder, HistogramIntervalQuantilesAndGaps) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  TimeSeriesRecorder recorder(registry);
  recorder.sample(0);
  for (std::uint64_t v = 1; v <= 4; ++v) h->record(v);
  recorder.sample(sim::kSecond);
  // Quiet interval: no recordings => no derived points (gap, not zero).
  recorder.sample(2 * sim::kSecond);

  const auto p50 = recorder.find("lat:p50");
  ASSERT_EQ(p50.size(), 1u);
  EXPECT_DOUBLE_EQ(p50[0].value, 2.0);  // exact: unit buckets
  const auto p99 = recorder.find("lat:p99");
  ASSERT_EQ(p99.size(), 1u);
  const auto mean = recorder.find("lat:mean");
  ASSERT_EQ(mean.size(), 1u);
  EXPECT_DOUBLE_EQ(mean[0].value, 2.5);  // (1+2+3+4)/4
  const auto count_rate = recorder.find("lat:count_rate");
  ASSERT_EQ(count_rate.size(), 1u);
  EXPECT_DOUBLE_EQ(count_rate[0].value, 4.0);  // 4 records in 1 s
}

TEST(TimeSeriesRecorder, HistogramDeltaIsolatesTheInterval) {
  // The second interval's quantiles must reflect only the second interval's
  // values, even though snapshots are cumulative since boot.
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  TimeSeriesRecorder recorder(registry);
  recorder.sample(0);
  for (int i = 0; i < 100; ++i) h->record(1);
  recorder.sample(sim::kSecond);
  for (int i = 0; i < 100; ++i) h->record(1000);
  recorder.sample(2 * sim::kSecond);

  const auto p50 = recorder.find("lat:p50");
  ASSERT_EQ(p50.size(), 2u);
  EXPECT_NEAR(p50[0].value, 1.0, 1.0);
  EXPECT_NEAR(p50[1].value, 1000.0, 128.0);  // not dragged down by the 1s
}

TEST(TimeSeriesRecorder, CapacityBoundsRetainedPoints) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("occ");
  TimeSeriesRecorder::Options opts;
  opts.capacity = 4;
  TimeSeriesRecorder recorder(registry, opts);
  for (int i = 0; i < 10; ++i) {
    g->set(i);
    recorder.sample(static_cast<sim::Time>(i) * sim::kSecond);
  }
  const auto points = recorder.find("occ");
  ASSERT_EQ(points.size(), 4u);  // oldest evicted
  EXPECT_EQ(points.front().value, 6);
  EXPECT_EQ(points.back().value, 9);
}

TEST(TimeSeriesRecorder, WindowStatsOverLastN) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("occ");
  TimeSeriesRecorder recorder(registry);
  const double values[] = {5, 1, 9, 3};
  for (int i = 0; i < 4; ++i) {
    g->set(values[i]);
    recorder.sample(static_cast<sim::Time>(i) * sim::kSecond);
  }
  const auto all = recorder.window("occ");
  EXPECT_EQ(all.count, 4u);
  EXPECT_EQ(all.min, 1);
  EXPECT_EQ(all.max, 9);
  EXPECT_DOUBLE_EQ(all.mean, 4.5);
  const auto last2 = recorder.window("occ", "", 2);
  EXPECT_EQ(last2.count, 2u);
  EXPECT_EQ(last2.min, 3);
  EXPECT_EQ(last2.max, 9);
  EXPECT_EQ(recorder.window("absent").count, 0u);
}

TEST(TimeSeriesRecorder, CsvAndJsonRenderPoints) {
  MetricsRegistry registry;
  registry.counter("pkts")->inc(7);
  TimeSeriesRecorder recorder(registry);
  recorder.sample(sim::kSecond);
  const std::string csv = recorder.to_csv();
  EXPECT_EQ(csv.rfind("t_seconds,name,labels,value\n", 0), 0u);
  EXPECT_NE(csv.find("1,pkts,\"\",7"), std::string::npos);
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("\"interval_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pkts\""), std::string::npos);
  EXPECT_NE(json.find("[1,7]"), std::string::npos);
}

TEST(TimeSeriesRecorder, AttachSamplesOnTheSimClock) {
  sim::Simulator sim;
  MetricsRegistry registry;
  Gauge* g = registry.gauge("occ");
  TimeSeriesRecorder::Options opts;
  opts.interval = 100 * sim::kMillisecond;
  TimeSeriesRecorder recorder(registry, opts);
  recorder.attach(sim, sim.now() + sim::kSecond);  // bounded: sim.run() is ok
  g->set(3);
  sim.run();
  recorder.detach();
  const auto points = recorder.find("occ");
  // Immediate sample at t=0 plus one per 100 ms through t=1 s inclusive.
  EXPECT_EQ(points.size(), 11u);
  EXPECT_EQ(points.back().at, sim::kSecond);
}

// ---------------------------------------------------------------------------
// FlowJourneyTracer
// ---------------------------------------------------------------------------

TEST(FlowJourney, ReconstructsOneFlowWithUpdateContext) {
  TraceRing ring(64);
  const std::uint32_t vip = ring.intern("20.0.0.1:80");
  const std::uint64_t flow = 0xABCDEF0123456789ull;
  ring.record_at(100, TraceEventKind::kLearn, vip, 7, flow);
  ring.record_at(150, TraceEventKind::kUpdateStep1Open, vip, 8, 7, 8);
  ring.record_at(200, TraceEventKind::kCuckooInsert, vip, 7, /*moves=*/0,
                 flow);
  ring.record_at(250, TraceEventKind::kUpdateFlip, vip, 8, 7, 8);
  // Outside [first, last]: must NOT appear as context.
  ring.record_at(900, TraceEventKind::kUpdateFinish, vip, 8);
  // A different flow: must not leak into this journey.
  ring.record_at(120, TraceEventKind::kLearn, vip, 7, flow + 1);

  const auto journey = FlowJourneyTracer::journey_of(ring, flow);
  ASSERT_TRUE(journey.has_value());
  EXPECT_EQ(journey->flow_id, flow);
  EXPECT_EQ(journey->scope, vip);
  EXPECT_EQ(journey->version, 7u);
  EXPECT_EQ(journey->first, 100u);
  EXPECT_EQ(journey->last, 200u);
  ASSERT_EQ(journey->events.size(), 2u);
  EXPECT_EQ(journey->events[0].kind, TraceEventKind::kLearn);
  EXPECT_EQ(journey->events[1].kind, TraceEventKind::kCuckooInsert);
  EXPECT_TRUE(journey->installed);
  EXPECT_FALSE(journey->software_fallback);
  ASSERT_EQ(journey->context.size(), 1u);  // only the in-window step1
  EXPECT_EQ(journey->context[0].kind, TraceEventKind::kUpdateStep1Open);

  EXPECT_EQ(FlowJourneyTracer::journey_of(ring, 0x1234).has_value(), false);
}

TEST(FlowJourney, ReconstructCapsFlowsFirstSeen) {
  TraceRing ring(64);
  for (std::uint64_t f = 1; f <= 10; ++f) {
    ring.record_at(f, TraceEventKind::kLearn, kNoScope, kNoVersion, f);
  }
  JourneyOptions options;
  options.max_flows = 3;
  const auto journeys = FlowJourneyTracer::reconstruct(ring, options);
  ASSERT_EQ(journeys.size(), 3u);
  EXPECT_EQ(journeys[0].flow_id, 1u);  // first-seen order
  EXPECT_EQ(journeys[2].flow_id, 3u);
}

TEST(FlowJourney, ChromeTraceHasFlowTracksAndInstallSpan) {
  TraceRing ring(64);
  const std::uint32_t vip = ring.intern("20.0.0.1:80");
  const std::uint64_t flow = 0x42;
  ring.record_at(100, TraceEventKind::kLearn, vip, 1, flow);
  ring.record_at(150, TraceEventKind::kUpdateFlip, vip, 2, 1, 2);
  ring.record_at(200, TraceEventKind::kCuckooInsert, vip, 1, 0, flow);
  const auto journeys = FlowJourneyTracer::reconstruct(ring);
  ASSERT_EQ(journeys.size(), 1u);
  const std::string out = FlowJourneyTracer::to_chrome_trace(ring, journeys);
  EXPECT_NE(out.find("flow 0x0000000000000042"), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);  // install span
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);  // event instants
  EXPECT_NE(out.find("ctx:"), std::string::npos);  // overlapping flip
  const std::string text = FlowJourneyTracer::format(ring, journeys[0]);
  EXPECT_NE(text.find("installed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ScrapeServer (real sockets on loopback, ephemeral port)
// ---------------------------------------------------------------------------

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ScrapeServer, ServesAllEndpointsOverLoopback) {
  MetricsRegistry registry;
  registry.counter("silkroad_packets_total")->inc(12);
  TimeSeriesRecorder recorder(registry);
  recorder.sample(sim::kSecond);

  ScrapeServer server;  // port 0 = ephemeral
  server.handle("/metrics", "text/plain; version=0.0.4",
                [&registry] { return to_prometheus(registry.snapshot()); });
  server.handle("/timeseries.json", "application/json",
                [&recorder] { return recorder.to_json(); });
  server.handle("/tables", "application/json",
                [] { return std::string("{\"conn_table\":{}}"); });
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0u);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("silkroad_packets_total 12"), std::string::npos);

  const std::string healthz = http_get(server.port(), "/healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("ok"), std::string::npos);

  const std::string series = http_get(server.port(), "/timeseries.json");
  EXPECT_NE(series.find("200 OK"), std::string::npos);
  EXPECT_NE(series.find("\"interval_ns\""), std::string::npos);

  const std::string tables = http_get(server.port(), "/tables");
  EXPECT_NE(tables.find("200 OK"), std::string::npos);
  EXPECT_NE(tables.find("conn_table"), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  EXPECT_GE(server.requests_served(), 5u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(ScrapeServer, EnvPortParsing) {
  std::uint16_t port = 1;
  ::unsetenv("SILKROAD_SCRAPE_PORT");
  EXPECT_FALSE(scrape_port_from_env(port));
  ::setenv("SILKROAD_SCRAPE_PORT", "9100", 1);
  EXPECT_TRUE(scrape_port_from_env(port));
  EXPECT_EQ(port, 9100u);
  ::setenv("SILKROAD_SCRAPE_PORT", "0", 1);
  EXPECT_TRUE(scrape_port_from_env(port));
  EXPECT_EQ(port, 0u);
  ::setenv("SILKROAD_SCRAPE_PORT", "70000", 1);
  EXPECT_FALSE(scrape_port_from_env(port));
  ::setenv("SILKROAD_SCRAPE_PORT", "not-a-port", 1);
  EXPECT_FALSE(scrape_port_from_env(port));
  ::unsetenv("SILKROAD_SCRAPE_PORT");
}

// ---------------------------------------------------------------------------
// Switch integration: event order and zero double-counting
// ---------------------------------------------------------------------------

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back(
        {net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

net::Packet packet_of(std::uint32_t client, bool syn) {
  net::Packet p;
  p.flow = {{net::IpAddress::v4(0x0B000000 + client), 1234}, vip_ep(),
            net::Protocol::kTcp};
  p.syn = syn;
  p.size_bytes = 100;
  return p;
}

core::SilkRoadSwitch::Config small_config() {
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(4096);
  config.learning = {.capacity = 64, .timeout = sim::kMillisecond};
  config.cpu = {.tasks_per_second = 200'000.0};
  return config;
}

TEST(SwitchTelemetry, PccUpdateEventsArriveInProtocolOrder) {
  sim::Simulator sim;
  core::SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(8);
  sw.add_vip(vip_ep(), dips);
  for (std::uint32_t i = 0; i < 32; ++i) sw.process_packet(packet_of(i, true));
  sw.request_update({sim.now(), vip_ep(), dips[0],
                     workload::UpdateAction::kRemoveDip,
                     workload::UpdateCause::kServiceUpgrade});
  sim.run();

  const auto scope = sw.trace().find_scope(vip_ep().to_string());
  ASSERT_TRUE(scope.has_value());
  std::vector<TraceEventKind> protocol;
  for (const auto& event : sw.trace().events()) {
    if (event.scope != *scope) continue;
    if (event.kind == TraceEventKind::kUpdateStep1Open ||
        event.kind == TraceEventKind::kUpdateFlip ||
        event.kind == TraceEventKind::kUpdateFinish) {
      protocol.push_back(event.kind);
    }
  }
  ASSERT_EQ(protocol.size(), 3u) << "one update => step1, flip, finish";
  EXPECT_EQ(protocol[0], TraceEventKind::kUpdateStep1Open);
  EXPECT_EQ(protocol[1], TraceEventKind::kUpdateFlip);
  EXPECT_EQ(protocol[2], TraceEventKind::kUpdateFinish);
}

TEST(SwitchTelemetry, LegacyStatsViewMatchesRegistryExactly) {
  sim::Simulator sim;
  core::SilkRoadSwitch sw(sim, small_config());
  const auto dips = make_dips(8);
  sw.add_vip(vip_ep(), dips);
  for (std::uint32_t i = 0; i < 200; ++i) {
    sw.process_packet(packet_of(i, true));
    sw.process_packet(packet_of(i, false));
  }
  sw.request_update({sim.now(), vip_ep(), dips[1],
                     workload::UpdateAction::kRemoveDip,
                     workload::UpdateCause::kServiceUpgrade});
  sim.run();

  // The Stats struct is a snapshot view over the registry: every field must
  // equal the registry series it is assembled from — same source, counted
  // exactly once.
  const auto stats = sw.stats();
  const Snapshot snap = sw.metrics().snapshot();
  EXPECT_EQ(static_cast<double>(stats.packets),
            snap.value_of("silkroad_packets_total"));
  EXPECT_EQ(static_cast<double>(stats.conn_table_hits),
            snap.value_of("silkroad_conn_table_hits_total"));
  EXPECT_EQ(static_cast<double>(stats.learns),
            snap.value_of("silkroad_learns_total"));
  EXPECT_EQ(static_cast<double>(stats.inserts),
            snap.value_of("silkroad_inserts_total"));
  EXPECT_EQ(static_cast<double>(stats.updates_completed),
            snap.value_of("silkroad_updates_completed_total"));
  EXPECT_GT(stats.packets, 0u);
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_EQ(stats.updates_completed, 1u);

  // Pull gauges are live views of the same structures (no second bookkeeping).
  EXPECT_EQ(snap.value_of("silkroad_connections_installed"),
            static_cast<double>(sw.conn_table().size()));

  // The packet-latency histogram saw exactly one record per processed packet.
  const MetricSample* latency = snap.find("silkroad_packet_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, stats.packets);
}

TEST(SwitchTelemetry, RecorderCapturesInsertLatencyTailUnderChurn) {
  // Acceptance criterion (ISSUE): after a churn phase, the recorder's p99
  // series for ConnTable insert latency is non-empty.
  sim::Simulator sim;
  core::SilkRoadSwitch sw(sim, small_config());
  sw.add_vip(vip_ep(), make_dips(8));
  TimeSeriesRecorder::Options opts;
  opts.interval = 10 * sim::kMillisecond;
  TimeSeriesRecorder recorder(sw.metrics(), opts);
  recorder.attach(sim);
  for (std::uint32_t i = 0; i < 400; ++i) {
    sim.schedule_at(static_cast<sim::Time>(i) * sim::kMillisecond / 4,
                    [&sw, i] { sw.process_packet(packet_of(i, true)); });
  }
  sim.run_until(200 * sim::kMillisecond);
  recorder.detach();
  sim.run();

  EXPECT_FALSE(recorder.find("silkroad_insert_latency_ns:p99").empty());
  EXPECT_FALSE(recorder.find("silkroad_insert_latency_ns:p50").empty());
  EXPECT_FALSE(recorder.find("silkroad_inserts_total:rate").empty());
  // Every sampled p99 is a sane latency (positive, below a second).
  for (const auto& point : recorder.find("silkroad_insert_latency_ns:p99")) {
    EXPECT_GT(point.value, 0.0);
    EXPECT_LT(point.value, 1e9);
  }
}

TEST(SwitchTelemetry, JourneysReconstructFromSwitchTrace) {
  sim::Simulator sim;
  core::SilkRoadSwitch sw(sim, small_config());
  sw.add_vip(vip_ep(), make_dips(8));
  for (std::uint32_t i = 0; i < 64; ++i) sw.process_packet(packet_of(i, true));
  sim.run();

  const auto journeys = FlowJourneyTracer::reconstruct(sw.trace());
  ASSERT_GE(journeys.size(), 32u);
  for (const auto& journey : journeys) {
    EXPECT_NE(journey.flow_id, 0u);
    ASSERT_FALSE(journey.events.empty());
    EXPECT_EQ(journey.events.front().kind, TraceEventKind::kLearn);
    for (std::size_t i = 1; i < journey.events.size(); ++i) {
      EXPECT_LE(journey.events[i - 1].at, journey.events[i].at);
    }
  }
  // The install pipeline ran: some journey reached the ConnTable.
  EXPECT_TRUE(std::any_of(journeys.begin(), journeys.end(),
                          [](const FlowJourney& j) { return j.installed; }));
}

TEST(SwitchTelemetry, TraceDroppedGaugeTracksRingWraparound) {
  sim::Simulator sim;
  core::SilkRoadSwitch sw(sim, small_config());
  EXPECT_EQ(sw.metrics().snapshot().value_of("obs_trace_dropped_total"), 0.0);
  // Overflow the 4096-slot ring directly; the pull counter must follow.
  for (std::uint64_t i = 0; i < 5000; ++i) {
    sw.trace().record(TraceEventKind::kLearn, kNoScope, kNoVersion, i);
  }
  EXPECT_GT(sw.trace().dropped(), 0u);
  EXPECT_EQ(sw.metrics().snapshot().value_of("obs_trace_dropped_total"),
            static_cast<double>(sw.trace().dropped()));
}

}  // namespace
}  // namespace silkroad::obs
