#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/distributions.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/time.h"

namespace silkroad::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(kMinute), 60.0);
  EXPECT_EQ(from_seconds(-1.0), Time{0});
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, TiesExecuteInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] {
    ++fired;
    sim.schedule_after(5, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 15u);
}

TEST(Simulator, CancellationPreventsExecution) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(5, [&] { handle.cancel(); });
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_at(1, [&] { ++fired; });
  sim.run();
  handle.cancel();  // must not crash or affect anything
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilSkipsCanceledHeadBeyondDeadline) {
  Simulator sim;
  int fired = 0;
  auto canceled = sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(100, [&] { ++fired; });
  canceled.cancel();
  sim.run_until(50);
  EXPECT_EQ(fired, 0);  // the 100-event must NOT run early
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(123);
  Rng b = a.fork();
  Rng c = a.fork();
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= (b.next() != c.next());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.uniform_int(10), 10u);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(InverseNormalCdf, MatchesKnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.99), 2.3263478740, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.9599639845, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.9599639845, 1e-6);
}

TEST(LogNormalByQuantiles, HitsTargetQuantiles) {
  const auto dist = LogNormalByQuantiles::from_median_p99(180.0, 6000.0);
  EXPECT_NEAR(dist.quantile(0.5), 180.0, 1e-6);
  EXPECT_NEAR(dist.quantile(0.99), 6000.0, 1.0);
}

TEST(LogNormalByQuantiles, SampleMedianConverges) {
  const auto dist = LogNormalByQuantiles::from_median_p99(10.0, 300.0);
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(dist.sample(rng));
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 10.0, 0.5);
}

TEST(EmpiricalCdf, FromSamplesQuantiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  const auto cdf = EmpiricalCdf::from_samples(samples);
  EXPECT_NEAR(cdf.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(cdf.cdf(50.0), 0.5, 0.01);
  EXPECT_DOUBLE_EQ(cdf.cdf(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(-5.0), 0.0);
}

TEST(EmpiricalCdf, EmptyIsSafe) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
}

TEST(Zipf, PmfSumsToOneAndIsSkewed) {
  const Zipf zipf(100, 1.0);
  double total = 0;
  for (std::size_t k = 0; k < 100; ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(50));
}

TEST(Zipf, SampleFollowsPmf) {
  const Zipf zipf(10, 1.2);
  Rng rng(3);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, zipf.pmf(0), 0.01);
  EXPECT_NEAR(static_cast<double>(counts[5]) / n, zipf.pmf(5), 0.01);
}

}  // namespace
}  // namespace silkroad::sim
