#include <gtest/gtest.h>

#include "asic/pipeline.h"

namespace silkroad::asic {
namespace {

TableSpec small_exact(const std::string& name, std::size_t entries,
                      int level = 0) {
  TableSpec spec;
  spec.name = name;
  spec.match = MatchKind::kExact;
  spec.key_bits = 32;
  spec.action_data_bits = 16;
  spec.entries = entries;
  spec.dependency_level = level;
  return spec;
}

TEST(TableSpec, EntryBitsUseStoredKey) {
  TableSpec spec;
  spec.key_bits = 296;
  spec.stored_key_bits = 16;
  spec.action_data_bits = 6;
  spec.overhead_bits = 6;
  EXPECT_EQ(spec.entry_bits(), 28u);  // SilkRoad ConnTable entry
  EXPECT_EQ(spec.entries = 1'000'000, 1'000'000u);
  EXPECT_EQ(spec.sram_words(), 250'000u);
}

TEST(PipelineProgram, PlacesSmallProgramInOneStage) {
  PipelineProgram program("tiny");
  program.add_table(small_exact("a", 1024));
  program.add_table(small_exact("b", 1024));
  const auto placement = program.place(ChipModel{});
  ASSERT_TRUE(placement.fits) << placement.error;
  EXPECT_EQ(placement.stages_used, 1);
}

TEST(PipelineProgram, DependencyLevelsForceLaterStages) {
  PipelineProgram program("deps");
  program.add_table(small_exact("first", 64, 0));
  program.add_table(small_exact("second", 64, 1));
  program.add_table(small_exact("third", 64, 2));
  const auto placement = program.place(ChipModel{});
  ASSERT_TRUE(placement.fits);
  EXPECT_EQ(placement.stages_used, 3);
  EXPECT_LT(placement.tables[0].last_stage, placement.tables[1].first_stage);
  EXPECT_LT(placement.tables[1].last_stage, placement.tables[2].first_stage);
}

TEST(PipelineProgram, LargeTableSpansStages) {
  PipelineProgram program("span");
  // 500K 54-bit entries (250K words) exceed one 106K-word stage.
  program.add_table(small_exact("huge", 500'000));
  const auto placement = program.place(ChipModel{});
  ASSERT_TRUE(placement.fits) << placement.error;
  ASSERT_EQ(placement.tables.size(), 1u);
  EXPECT_GT(placement.tables[0].last_stage, placement.tables[0].first_stage);
}

TEST(PipelineProgram, FailsWhenProgramExceedsChip) {
  PipelineProgram program("too-big");
  program.add_table(small_exact("monster", 2'000'000'000));
  const auto placement = program.place(ChipModel{});
  EXPECT_FALSE(placement.fits);
  EXPECT_NE(placement.error.find("monster"), std::string::npos);
}

TEST(PipelineProgram, TernaryConsumesTcamNotSram) {
  PipelineProgram program("acl");
  TableSpec acl;
  acl.name = "acl";
  acl.match = MatchKind::kTernary;
  acl.key_bits = 120;
  acl.entries = 2048;
  program.add_table(acl);
  const auto resources = program.total_resources();
  EXPECT_GT(resources.tcam_bytes, 0);
  EXPECT_DOUBLE_EQ(resources.sram_bytes, 0);
}

TEST(PipelineProgram, BaselineSwitchP4FitsTheChip) {
  const auto program = PipelineProgram::baseline_switch_p4();
  const auto placement = program.place(ChipModel{});
  ASSERT_TRUE(placement.fits) << placement.error;
  EXPECT_LE(placement.stages_used, 32);
}

TEST(PipelineProgram, BaselineResourcesNearCalibratedConstants) {
  // The placement model and the flat resource constants in resources.cc
  // describe the same program; they should agree within modeling slack.
  const auto computed = PipelineProgram::baseline_switch_p4().total_resources();
  const auto constants = baseline_switch_p4_usage();
  EXPECT_NEAR(computed.sram_bytes, constants.sram_bytes,
              constants.sram_bytes * 0.45);
  EXPECT_NEAR(computed.vliw_actions, constants.vliw_actions,
              constants.vliw_actions * 0.35);
  EXPECT_NEAR(computed.stateful_alus, constants.stateful_alus, 4.0);
}

TEST(PipelineProgram, SilkRoadAloneIsSmall) {
  const auto program = PipelineProgram::silkroad_p4(1'000'000);
  const auto placement = program.place(ChipModel{});
  ASSERT_TRUE(placement.fits) << placement.error;
  const auto resources = program.total_resources();
  EXPECT_NEAR(resources.sram_bytes, 3.6e6, 0.8e6);  // ~3.5 MB ConnTable
  EXPECT_DOUBLE_EQ(resources.tcam_bytes, 0);        // Table 2: TCAM 0%
}

TEST(PipelineProgram, CombinedProgramFitsAt10MConnections) {
  // §5.2: the prototype fits 10M connections on top of switch.p4.
  auto combined = PipelineProgram::baseline_switch_p4();
  combined.merge(PipelineProgram::silkroad_p4(10'000'000));
  const auto placement = combined.place(ChipModel{});
  ASSERT_TRUE(placement.fits) << placement.error;
  EXPECT_LE(placement.stages_used, 32);
}

TEST(PipelineProgram, MergeKeepsProgramsIndependent) {
  PipelineProgram a("a");
  a.add_table(small_exact("a0", 16, 0));
  a.add_table(small_exact("a1", 16, 1));
  PipelineProgram b("b");
  b.add_table(small_exact("b0", 16, 5));
  a.merge(b);
  // b's table keeps its own level but gets a distinct program id, so its
  // dependency chain does not serialize against a's.
  EXPECT_EQ(a.tables().back().dependency_level, 5);
  EXPECT_NE(a.tables().back().program_id, a.tables().front().program_id);
  const auto placement = a.place(ChipModel{});
  ASSERT_TRUE(placement.fits);
  // b0 has no same-program predecessors: it lands in stage 0 despite level 5.
  EXPECT_EQ(placement.tables.back().first_stage, 0);
}

TEST(FormatPlacement, ReadableOutput) {
  const auto program = PipelineProgram::silkroad_p4(1'000'000);
  const auto placement = program.place(ChipModel{});
  const auto text = format_placement(placement);
  EXPECT_NE(text.find("conn_table"), std::string::npos);
  EXPECT_NE(text.find("fits in"), std::string::npos);
}

}  // namespace
}  // namespace silkroad::asic
