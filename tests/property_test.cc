// Property-based tests: randomized operation sequences checked against
// invariants and reference models, parameterized over seeds (TEST_P sweeps).
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "asic/cuckoo_table.h"
#include "check/invariant_auditor.h"
#include "core/silkroad_switch.h"
#include "core/version_manager.h"
#include "lb/scenario.h"
#include "lb/slb.h"
#include "sim/random.h"

namespace silkroad {
namespace {

net::Endpoint vip_ep(std::uint32_t n = 1) {
  return {net::IpAddress::v4(0x14000000 + n), 80};
}

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

net::FiveTuple make_flow(std::uint32_t client) {
  return net::FiveTuple{{net::IpAddress::v4(0x0B000000 + client), 1234},
                        vip_ep(),
                        net::Protocol::kTcp};
}

// --- Cuckoo table vs a reference map -----------------------------------------

class CuckooFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CuckooFuzz, AgreesWithReferenceMapUnderRandomOps) {
  sim::Rng rng(GetParam());
  asic::CuckooConfig config;
  config.buckets_per_stage = 64;
  asic::DigestCuckooTable table(config);
  std::unordered_map<net::FiveTuple, std::uint32_t, net::FiveTupleHash> ref;

  for (int op = 0; op < 4000; ++op) {
    const std::uint32_t client = static_cast<std::uint32_t>(rng.uniform_int(700));
    const auto flow = make_flow(client);
    const double dice = rng.uniform();
    if (dice < 0.55) {
      const auto value = static_cast<std::uint32_t>(rng.uniform_int(64));
      if (table.insert(flow, value).inserted) {
        ref[flow] = value;
      } else {
        // Insertion failure must only happen when absent from the table.
        EXPECT_FALSE(ref.contains(flow));
      }
    } else if (dice < 0.85) {
      EXPECT_EQ(table.erase(flow), ref.erase(flow) > 0);
    } else {
      const auto value = table.exact_value(flow);
      const auto it = ref.find(flow);
      if (it == ref.end()) {
        EXPECT_FALSE(value.has_value());
      } else {
        ASSERT_TRUE(value.has_value());
        EXPECT_EQ(*value, it->second);
      }
    }
  }
  EXPECT_EQ(table.size(), ref.size());
  // Every reference entry must be reachable through the data-plane lookup
  // with its correct value (the lookup may in principle false-hit, but the
  // control plane's conflict resolution is exercised by the switch, not the
  // raw table — here we verify via exact_value).
  for (const auto& [flow, value] : ref) {
    EXPECT_EQ(table.exact_value(flow).value_or(9999), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CuckooFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull));

// --- Version manager invariants ------------------------------------------------

class VersionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VersionFuzz, InvariantsHoldUnderRandomUpdateStreams) {
  sim::Rng rng(GetParam());
  const auto dips = make_dips(24);
  core::VipVersionManager mgr(
      vip_ep(), dips,
      {.version_bits = 4,  // tight: forces recycling and exhaustion paths
       .enable_reuse = true,
       .semantics = lb::PoolSemantics::kStableResilient});
  std::map<std::uint32_t, int> live_refs;
  live_refs[mgr.current_version()] = 0;

  for (int op = 0; op < 2000; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.4) {
      // Random add/remove update.
      workload::DipUpdate update;
      update.vip = vip_ep();
      update.dip = dips[rng.uniform_int(dips.size())];
      update.action = rng.bernoulli(0.5) ? workload::UpdateAction::kAddDip
                                         : workload::UpdateAction::kRemoveDip;
      const auto staged = mgr.stage_update(update);
      if (!staged) {
        // Exhaustion: an eviction candidate must exist whenever more than
        // the current version is live.
        if (mgr.active_versions() > 1) {
          const auto victim = mgr.eviction_candidate();
          ASSERT_TRUE(victim.has_value());
          live_refs.erase(*victim);
          mgr.force_destroy(*victim);
        }
        continue;
      }
      mgr.commit(staged->target_version);
      live_refs.emplace(staged->target_version, 0);
    } else if (dice < 0.7) {
      // A connection starts on the current version.
      ++live_refs[mgr.current_version()];
      mgr.acquire(mgr.current_version());
    } else {
      // A connection on some referenced version ends.
      for (auto it = live_refs.begin(); it != live_refs.end(); ++it) {
        if (it->second > 0) {
          --it->second;
          mgr.release(it->first);
          break;
        }
      }
    }
    // Invariants.
    EXPECT_LE(mgr.active_versions(), mgr.version_capacity());
    ASSERT_NE(mgr.pool(mgr.current_version()), nullptr);
    for (auto it = live_refs.begin(); it != live_refs.end();) {
      const bool must_exist =
          it->second > 0 || it->first == mgr.current_version();
      if (must_exist) {
        EXPECT_NE(mgr.pool(it->first), nullptr)
            << "version " << it->first << " vanished with refs";
        ++it;
      } else if (mgr.pool(it->first) == nullptr) {
        it = live_refs.erase(it);  // destroyed, as allowed
      } else {
        ++it;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionFuzz,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));

// --- End-to-end PCC property across random scenarios ----------------------------

class PccProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PccProperty, SilkRoadNeverViolatesAcrossSeeds) {
  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(50'000);
  config.learning = {.capacity = 256,
                     .timeout = (GetParam() % 2 == 0) ? sim::kMillisecond
                                                      : 5 * sim::kMillisecond};
  core::SilkRoadSwitch sw(sim, config);

  lb::ScenarioConfig sc;
  sc.horizon = 90 * sim::kSecond;
  sc.seed = GetParam();
  sim::Rng rng(GetParam() * 7919);
  const int vips = 3;
  for (int v = 0; v < vips; ++v) {
    sc.vip_loads.push_back({vip_ep(static_cast<std::uint32_t>(v + 1)),
                            600.0 + 400.0 * rng.uniform(),
                            workload::FlowProfile::hadoop(), false});
    std::vector<net::Endpoint> dips;
    const int pool = 4 + static_cast<int>(rng.uniform_int(20));
    for (int d = 0; d < pool; ++d) {
      dips.push_back({net::IpAddress::v4(0x0A010000 +
                                         static_cast<std::uint32_t>(v * 256 + d)),
                      20});
    }
    sc.dip_pools.push_back(dips);
    workload::UpdateGenerator gen({.seed = rng.next()},
                                  sc.vip_loads.back().vip, dips);
    auto updates = gen.generate(10.0 + 20.0 * rng.uniform(), sc.horizon);
    sc.updates.insert(sc.updates.end(), updates.begin(), updates.end());
  }
  lb::Scenario scenario(sim, sw, sc);
  // The scenario driver also self_check()s the switch at every update step;
  // a final explicit audit here keeps the violation list visible to gtest.
  const auto stats = scenario.run();
  EXPECT_GT(stats.flows, 500u);
  EXPECT_EQ(stats.violations, 0u)
      << "seed " << GetParam() << " with " << stats.updates_applied
      << " updates broke PCC";
  const check::InvariantAuditor auditor(sw);
  for (const auto& violation : auditor.audit()) {
    ADD_FAILURE() << "seed " << GetParam() << ": " << violation.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PccProperty,
                         ::testing::Range(std::uint64_t{100}, std::uint64_t{112}));

// --- Invariant auditor runs clean after every update step -----------------------

class AuditorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AuditorProperty, CleanAfterEveryUpdateStep) {
  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(5'000);
  config.learning = {.capacity = 128, .timeout = sim::kMillisecond};
  config.version_bits = 4;  // tight: exercises recycling + eviction paths
  core::SilkRoadSwitch sw(sim, config);
  const auto dips = make_dips(16);
  sw.add_vip(vip_ep(), dips);
  const check::InvariantAuditor auditor(sw);
  sim::Rng rng(GetParam());

  const auto audit_now = [&](const char* when, int step) {
    for (const auto& violation : auditor.audit()) {
      ADD_FAILURE() << "seed " << GetParam() << " step " << step << " ("
                    << when << "): " << violation.to_string();
    }
  };

  std::uint32_t next_client = 0;
  for (int step = 0; step < 120; ++step) {
    // A burst of new connections...
    for (int i = 0; i < 20; ++i) {
      net::Packet syn;
      syn.flow = make_flow(next_client++);
      syn.syn = true;
      syn.size_bytes = 64;
      sw.process_packet(syn);
    }
    // ...then a pool update, audited at request time (Step1 of the 3-step
    // protocol may already be open) and again once the queue drains (the
    // window has committed and closed).
    workload::DipUpdate update;
    update.at = sim.now();
    update.vip = vip_ep();
    update.dip = dips[rng.uniform_int(dips.size())];
    update.action = rng.bernoulli(0.5) ? workload::UpdateAction::kAddDip
                                       : workload::UpdateAction::kRemoveDip;
    sw.request_update(update);
    audit_now("t_req", step);
    if (rng.bernoulli(0.3)) {
      // Occasionally end a known connection mid-update.
      net::Packet fin;
      fin.flow = make_flow(rng.uniform_int(next_client));
      fin.fin = true;
      fin.size_bytes = 64;
      sw.process_packet(fin);
    }
    sim.run();
    audit_now("drained", step);
  }
  EXPECT_GT(sw.stats().updates_completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditorProperty,
                         ::testing::Values(3ull, 7ull, 31ull, 127ull));

// --- SLB is PCC-clean under the same randomized scenarios -----------------------

TEST_P(PccProperty, SlbNeverViolatesAcrossSeeds) {
  sim::Simulator sim;
  lb::SoftwareLoadBalancer slb;
  lb::ScenarioConfig sc;
  sc.horizon = 60 * sim::kSecond;
  sc.seed = GetParam();
  sc.vip_loads = {
      {vip_ep(), 1500.0, workload::FlowProfile::hadoop(), false}};
  sc.dip_pools = {make_dips(12)};
  workload::UpdateGenerator gen({.seed = GetParam()}, vip_ep(), make_dips(12));
  sc.updates = gen.generate(25.0, sc.horizon);
  lb::Scenario scenario(sim, slb, sc);
  const auto stats = scenario.run();
  EXPECT_EQ(stats.violations, 0u);
}

}  // namespace
}  // namespace silkroad
