#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "deploy/fleet.h"
#include "fault/control_channel.h"
#include "fault/fault_injector.h"

namespace silkroad::fault {
namespace {

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back(
        {net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

net::Packet packet_of(std::uint32_t client, bool syn = false) {
  net::Packet p;
  p.flow = net::FiveTuple{{net::IpAddress::v4(0x0B000000 + client), 1234},
                          vip_ep(),
                          net::Protocol::kTcp};
  p.syn = syn;
  p.size_bytes = 100;
  return p;
}

core::SilkRoadSwitch::Config small_config() {
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(8192);
  return config;
}

workload::DipUpdate update_of(std::uint64_t marker,
                              workload::UpdateAction action,
                              const net::Endpoint& dip) {
  workload::DipUpdate update;
  update.at = static_cast<sim::Time>(marker);  // marker, not a schedule time
  update.vip = vip_ep();
  update.dip = dip;
  update.action = action;
  update.cause = workload::UpdateCause::kServiceUpgrade;
  return update;
}

/// Harness around a standalone channel: records the `at` marker of every
/// delivered DipUpdate plus how many times the resync callback fired.
struct ChannelHarness {
  sim::Simulator sim;
  std::vector<std::uint64_t> delivered;
  int resyncs = 0;
  ControlChannel channel;

  explicit ChannelHarness(ControlChannel::Config config)
      : channel(
            sim, config,
            [this](const ControlChannel::Payload& p) {
              delivered.push_back(static_cast<std::uint64_t>(
                  std::get<workload::DipUpdate>(p).at));
            },
            [this] { ++resyncs; }) {}
};

TEST(ControlChannel, DeliversInOrderUnderLossAndReorder) {
  ChannelHarness h({.base_delay = 100 * sim::kMicrosecond,
                    .jitter = 50 * sim::kMicrosecond,
                    .drop_probability = 0.10,
                    .reorder_probability = 0.30,
                    .reorder_extra = 1 * sim::kMillisecond,
                    .resync_after_retries = 50});
  const auto dip = make_dips(1)[0];
  for (std::uint64_t i = 0; i < 50; ++i) {
    h.channel.send(update_of(i, workload::UpdateAction::kAddDip, dip));
  }
  h.sim.run();
  ASSERT_EQ(h.delivered.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(h.delivered[i], i) << "out-of-order delivery at " << i;
  }
  EXPECT_EQ(h.channel.outstanding(), 0u);
  EXPECT_EQ(h.channel.resyncs(), 0u);
  EXPECT_GT(h.channel.dropped() + h.channel.reorders(), 0u);
}

TEST(ControlChannel, LostAcksProduceDuplicatesButSingleDelivery) {
  ChannelHarness h({.base_delay = 100 * sim::kMicrosecond,
                    .drop_probability = 0.40,
                    .resync_after_retries = 100});
  const auto dip = make_dips(1)[0];
  for (std::uint64_t i = 0; i < 100; ++i) {
    h.channel.send(update_of(i, workload::UpdateAction::kAddDip, dip));
  }
  h.sim.run();
  // With 40% loss on both directions, some retransmits answer a lost ack —
  // the receiver must count and suppress them, never re-deliver.
  EXPECT_GT(h.channel.duplicates(), 0u);
  EXPECT_GT(h.channel.retries(), 0u);
  std::unordered_map<std::uint64_t, int> times_delivered;
  for (const std::uint64_t marker : h.delivered) ++times_delivered[marker];
  ASSERT_EQ(times_delivered.size(), 100u);
  for (const auto& [marker, n] : times_delivered) {
    EXPECT_EQ(n, 1) << "marker " << marker << " delivered " << n << " times";
  }
}

TEST(ControlChannel, RetryExhaustionEscalatesToResync) {
  ChannelHarness h({.base_delay = 100 * sim::kMicrosecond,
                    .retry_timeout = 1 * sim::kMillisecond,
                    .resync_after_retries = 3});
  // Total blackout for the first 100 ms: every transmission (and ack) dies.
  h.channel.set_loss_hook(
      [](sim::Time now) { return now < 100 * sim::kMillisecond; });
  h.channel.send(
      update_of(7, workload::UpdateAction::kAddDip, make_dips(1)[0]));
  h.sim.run();
  EXPECT_GE(h.channel.retries(), 3u);
  EXPECT_GE(h.channel.resyncs(), 1u);
  EXPECT_EQ(h.resyncs, static_cast<int>(h.channel.resyncs()));
  // The individual message died with the window; the resync carried state.
  EXPECT_TRUE(h.delivered.empty());
  EXPECT_FALSE(h.channel.needs_resync());
  EXPECT_EQ(h.channel.outstanding(), 0u);
}

TEST(ControlChannel, OfflineSendsAreDroppedAndFlaggedForResync) {
  ChannelHarness h({.base_delay = 100 * sim::kMicrosecond});
  h.channel.set_offline(true);
  h.channel.send(
      update_of(1, workload::UpdateAction::kAddDip, make_dips(1)[0]));
  h.sim.run();
  EXPECT_TRUE(h.delivered.empty());
  EXPECT_TRUE(h.channel.needs_resync());
  EXPECT_EQ(h.channel.dropped(), 1u);
  // force_resync while offline stays deferred; once online it lands.
  h.channel.force_resync();
  EXPECT_EQ(h.resyncs, 0);
  h.channel.set_offline(false);
  h.channel.force_resync();
  h.sim.run();
  EXPECT_EQ(h.resyncs, 1);
  EXPECT_FALSE(h.channel.needs_resync());
}

TEST(FaultPlan, SameSeedReplaysIdentically) {
  const FaultPlan::Options options{.horizon = 30 * sim::kSecond,
                                   .switches = 3,
                                   .dips = 8,
                                   .include_crash = true};
  const FaultPlan a = FaultPlan::random(1234, options);
  const FaultPlan b = FaultPlan::random(1234, options);
  const FaultPlan c = FaultPlan::random(1235, options);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(FaultPlan, CoversEveryKindAndClosesBeforeQuiesce) {
  const FaultPlan::Options options{.horizon = 30 * sim::kSecond,
                                   .switches = 3,
                                   .dips = 8,
                                   .include_crash = true};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, options);
    for (std::size_t k = 0; k < kFaultKindCount; ++k) {
      EXPECT_TRUE(plan.any(static_cast<FaultKind>(k)))
          << "seed " << seed << " missing kind " << k;
    }
    for (const auto& w : plan.windows) {
      EXPECT_LT(w.start, w.end) << w.to_string();
      EXPECT_LE(w.end, static_cast<sim::Time>(0.85 * 30 * sim::kSecond) + 1)
          << w.to_string();
    }
  }
  const FaultPlan no_crash = FaultPlan::random(
      0, {.horizon = 30 * sim::kSecond, .include_crash = false});
  EXPECT_FALSE(no_crash.any(FaultKind::kSwitchCrash));
}

TEST(FaultInjector, DipFlapOracleFollowsSquareWaveAndExportsMetrics) {
  sim::Simulator sim;
  obs::MetricsRegistry registry;
  FaultPlan plan;
  plan.windows.push_back({FaultKind::kDipFlap, 1 * sim::kSecond,
                          9 * sim::kSecond, /*target=*/3, 0.0,
                          /*period=*/2 * sim::kSecond});
  FaultInjector injector(sim, plan, 42, &registry);
  // Outside the window and for other DIPs: always alive.
  EXPECT_TRUE(injector.dip_alive(3, 0));
  EXPECT_TRUE(injector.dip_alive(2, 2 * sim::kSecond));
  // Inside: down in the first half-period, up in the second.
  EXPECT_FALSE(injector.dip_alive(3, 1 * sim::kSecond + 1));
  EXPECT_TRUE(injector.dip_alive(3, 2 * sim::kSecond + 1));
  EXPECT_FALSE(injector.dip_alive(3, 3 * sim::kSecond + 1));
  EXPECT_TRUE(injector.dip_alive(3, 9 * sim::kSecond));
  EXPECT_EQ(injector.injected(FaultKind::kDipFlap), 2u);  // two down edges
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("silkroad_faults_injected_total", "kind=\"dip-flap\""),
            2.0);
  // The full taxonomy is pre-registered at zero for the exporters.
  EXPECT_NE(
      snap.find("silkroad_faults_injected_total", "kind=\"switch-crash\""),
      nullptr);
}

TEST(SilkRoadSwitch, RelearnJanitorRecoversDroppedNotifications) {
  sim::Simulator sim;
  auto config = small_config();
  config.relearn_timeout = 2 * sim::kMillisecond;
  core::SilkRoadSwitch sw(sim, config);
  sw.add_vip(vip_ep(), make_dips(4));
  // Every learning-filter notification is lost on the PCI-E hop.
  int drops = 0;
  core::SilkRoadSwitch::FaultHooks hooks;
  hooks.learn_drop = [&](const asic::LearnEvent&) {
    ++drops;
    return true;
  };
  sw.set_fault_hooks(std::move(hooks));
  const auto first = sw.process_packet(packet_of(1, true));
  ASSERT_TRUE(first.dip.has_value());
  sim.run();
  EXPECT_GT(drops, 0);
  // The janitor re-enqueued the flow directly: it is installed, not stuck.
  EXPECT_EQ(sw.pending_insertions(), 0u);
  EXPECT_EQ(sw.stats().inserts, 1u);
  EXPECT_GT(
      sw.metrics().snapshot().value_of("silkroad_relearns_total"), 0.0);
  const auto repeat = sw.process_packet(packet_of(1));
  EXPECT_EQ(*repeat.dip, *first.dip);
  EXPECT_EQ(sw.stats().conn_table_hits, 1u);
  sw.self_check();
}

TEST(SilkRoadSwitch, BoundedPendingQueueShedsWithVersionPin) {
  sim::Simulator sim;
  auto config = small_config();
  config.max_pending_inserts = 1;
  config.cpu.tasks_per_second = 100;  // insertions crawl: the queue stays full
  config.learning.timeout = 100 * sim::kMicrosecond;
  config.shed_policy = core::SilkRoadSwitch::ShedPolicy::kPinVersion;
  core::SilkRoadSwitch sw(sim, config);
  sw.add_vip(vip_ep(), make_dips(4));
  std::unordered_map<std::uint32_t, net::Endpoint> admitted;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto r = sw.process_packet(packet_of(i, true));
    ASSERT_TRUE(r.dip.has_value()) << "flow " << i;
    admitted.emplace(i, *r.dip);
  }
  EXPECT_GT(sw.degraded_flows(), 0u);
  EXPECT_GT(sw.metrics().snapshot().value_of("silkroad_pending_shed_total"),
            0.0);
  // A pool update mid-flight: pinned flows keep their admission-time mapping.
  sw.request_update(update_of(0, workload::UpdateAction::kRemoveDip,
                              make_dips(4)[0]));
  sim.run();
  for (const auto& [i, dip] : admitted) {
    if (dip == make_dips(4)[0]) continue;  // server removed: flow is dead
    const auto r = sw.process_packet(packet_of(i));
    ASSERT_TRUE(r.dip.has_value());
    EXPECT_EQ(*r.dip, dip) << "flow " << i << " was re-mapped";
  }
  // FIN releases the pin.
  const std::size_t before = sw.degraded_flows();
  for (std::uint32_t i = 0; i < 8; ++i) {
    net::Packet fin = packet_of(i);
    fin.fin = true;
    sw.process_packet(fin);
  }
  sim.run();
  EXPECT_LT(sw.degraded_flows(), before);
  sw.self_check();
}

TEST(SilkRoadSwitch, DegradedModeHysteresisOnCpuBacklog) {
  sim::Simulator sim;
  auto config = small_config();
  config.cpu.tasks_per_second = 1000;
  config.learning.timeout = 50 * sim::kMicrosecond;
  config.degraded_enter_backlog = 4;
  config.degraded_exit_backlog = 0;
  config.degraded_poll_period = 500 * sim::kMicrosecond;
  core::SilkRoadSwitch sw(sim, config);
  sw.add_vip(vip_ep(), make_dips(4));
  // Pile up far more insertions than the CPU can absorb.
  for (std::uint32_t i = 0; i < 64; ++i) {
    sw.process_packet(packet_of(i, true));
  }
  sim.run_until(2 * sim::kMillisecond);
  // New flows keep getting served while the backlog drains.
  for (std::uint32_t i = 100; i < 110; ++i) {
    EXPECT_TRUE(sw.process_packet(packet_of(i, true)).dip.has_value());
  }
  const double transitions_mid = sw.metrics().snapshot().value_of(
      "silkroad_degraded_mode_transitions_total");
  EXPECT_GE(transitions_mid, 1.0);  // entered at least once
  sim.run();
  // Backlog fully drained: the poll noticed and the switch exited.
  EXPECT_FALSE(sw.in_degraded_mode());
  const auto snap = sw.metrics().snapshot();
  EXPECT_GE(snap.value_of("silkroad_degraded_mode_transitions_total"), 2.0);
  EXPECT_EQ(snap.value_of("silkroad_degraded_mode"), 0.0);
  sw.self_check();
}

TEST(SilkRoadFleet, UpdateWhileSwitchDownIsResyncedOnRestore) {
  sim::Simulator sim;
  deploy::SilkRoadFleet fleet(sim, small_config(), 2);
  const auto dips = make_dips(4);
  fleet.add_vip(vip_ep(), dips);
  fleet.fail_switch(0);
  // Membership changes while the switch is dead: one DIP out, one new one in.
  const net::Endpoint fresh{net::IpAddress::v4(0x0A0000FF), 20};
  fleet.request_update(update_of(0, workload::UpdateAction::kRemoveDip,
                                 dips[1]));
  fleet.request_update(update_of(0, workload::UpdateAction::kAddDip, fresh));
  sim.run();
  EXPECT_TRUE(fleet.channel_at(0).needs_resync());
  fleet.restore_switch(0);
  sim.run();
  EXPECT_EQ(fleet.live_count(), 2u);
  EXPECT_GE(fleet.channel_at(0).resyncs(), 1u);
  EXPECT_TRUE(fleet.converged());  // both replicas serve the newest membership
  const auto* mgr = fleet.switch_at(0).version_manager(vip_ep());
  ASSERT_NE(mgr, nullptr);
  const auto* pool = mgr->pool(mgr->current_version());
  EXPECT_TRUE(pool->contains_live(fresh));
  EXPECT_FALSE(pool->contains_live(dips[1]));
  fleet.self_check();
}

TEST(SilkRoadFleet, LossyReorderingChannelsConvergeAcrossUpdateBoundaries) {
  sim::Simulator sim;
  // Aggressive channel: 20% loss, half the messages shoved past their
  // successors — deliveries straddle 3-step protocol boundaries constantly.
  deploy::SilkRoadFleet fleet(sim, small_config(), 3, 0xFEE7ULL,
                              {.base_delay = 100 * sim::kMicrosecond,
                               .jitter = 100 * sim::kMicrosecond,
                               .drop_probability = 0.20,
                               .reorder_probability = 0.50,
                               .reorder_extra = 2 * sim::kMillisecond});
  const auto dips = make_dips(8);
  fleet.add_vip(vip_ep(), dips);
  for (std::uint64_t round = 0; round < 6; ++round) {
    const auto& dip = dips[round % dips.size()];
    fleet.request_update(
        update_of(round, workload::UpdateAction::kRemoveDip, dip));
    fleet.request_update(
        update_of(round, workload::UpdateAction::kAddDip, dip));
  }
  sim.run();
  EXPECT_TRUE(fleet.converged());
  EXPECT_EQ(fleet.ctrl_outstanding(), 0u);
  fleet.self_check();
  std::uint64_t reorders = 0;
  std::uint64_t duplicates = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    reorders += fleet.channel_at(i).reorders();
    duplicates += fleet.channel_at(i).duplicates();
  }
  EXPECT_GT(reorders, 0u);
  EXPECT_GT(duplicates, 0u);
  // The channel counters surface in the fleet-wide snapshot (per switch).
  const auto snap = fleet.metrics_snapshot();
  EXPECT_NE(snap.find("silkroad_ctrl_retries_total", "switch=\"0\""), nullptr);
  EXPECT_NE(snap.find("silkroad_ctrl_resyncs_total", "switch=\"2\""), nullptr);
}

// Regression: a lost ack retransmits an already-delivered DipUpdate. The
// receiver must apply it exactly once, and the suppressed duplicate must be
// visible on the update's span record (kChannelDup on that switch's leg).
TEST(ControlChannelSpans, LostAckDuplicateIsIdempotentAndVisibleInSpan) {
  sim::Simulator sim;
  fault::ControlChannel::Config channel;
  channel.base_delay = 100 * sim::kMicrosecond;
  channel.retry_timeout = 1 * sim::kMillisecond;
  channel.resync_after_retries = 10;
  deploy::SilkRoadFleet fleet(sim, small_config(), 1, 0xFEE7ULL, channel);
  const auto dips = make_dips(4);
  fleet.add_vip(vip_ep(), dips);
  sim.run();

  // Drop exactly the second transmission through the channel: message (1,
  // passes) -> its ack (2, DROPPED) -> retransmit (3, passes) -> duplicate's
  // ack (4, passes).
  int call = 0;
  fleet.set_channel_loss_hook(0, [&call](sim::Time) { return ++call == 2; });
  net::Endpoint extra{net::IpAddress::v4(0x0A0000FF), 20};
  fleet.request_update(update_of(0, workload::UpdateAction::kAddDip, extra));
  sim.run();

  const auto& ch = fleet.channel_at(0);
  EXPECT_EQ(ch.delivered(), 1u);
  EXPECT_EQ(ch.duplicates(), 1u);
  EXPECT_EQ(ch.dropped(), 1u);
  EXPECT_GE(ch.retries(), 1u);
  EXPECT_EQ(fleet.switch_at(0).stats().updates_requested, 1u)
      << "duplicate delivery must not re-run the 3-step protocol";

  const obs::UpdateSpan* span = fleet.spans().find(1);
  ASSERT_NE(span, nullptr);
  EXPECT_TRUE(span->has(obs::SpanEventKind::kChannelDeliver, 0));
  EXPECT_TRUE(span->has(obs::SpanEventKind::kChannelDrop, 0));  // the lost ack
  EXPECT_TRUE(span->has(obs::SpanEventKind::kChannelRetry, 0));
  EXPECT_TRUE(span->has(obs::SpanEventKind::kChannelDup, 0));
  EXPECT_TRUE(span->has(obs::SpanEventKind::kFinish, 0));
  EXPECT_TRUE(fleet.spans().audit_complete().empty());

  // Duplicate *content* (same add re-issued) is a distinct span that the
  // fleet's applied-state mirror skips idempotently.
  fleet.request_update(update_of(1, workload::UpdateAction::kAddDip, extra));
  sim.run();
  const obs::UpdateSpan* dup = fleet.spans().find(2);
  ASSERT_NE(dup, nullptr);
  EXPECT_TRUE(dup->has(obs::SpanEventKind::kSkipped, 0));
  EXPECT_EQ(fleet.switch_at(0).stats().updates_requested, 1u);

  // Satellite gauges: in-flight transmissions and reorder-buffer depth are
  // exported per switch and are zero at quiesce.
  const auto snap = fleet.metrics_snapshot();
  const auto* inflight = snap.find("silkroad_ctrl_inflight", "switch=\"0\"");
  ASSERT_NE(inflight, nullptr);
  EXPECT_EQ(inflight->value, 0.0);
  const auto* depth =
      snap.find("silkroad_ctrl_reorder_buffer_depth", "switch=\"0\"");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->value, 0.0);
  EXPECT_EQ(ch.inflight(), 0u);
  EXPECT_EQ(ch.reorder_buffer_depth(), 0u);
}

}  // namespace
}  // namespace silkroad::fault
