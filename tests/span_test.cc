// Update-span tracing end to end (DESIGN.md §12): id propagation through the
// lossy control channels into the 3-step protocol, resync subsumption,
// per-hop histograms, the /update/<id> scrape route, and the acceptance
// criterion — a forced PCC violation whose ForensicsReport interleaves the
// violating flow's journey with the overlapping update span's retransmit leg.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "deploy/fleet.h"
#include "gtest/gtest.h"
#include "lb/scenario.h"
#include "obs/forensics.h"
#include "obs/scrape_server.h"

namespace silkroad {
namespace {

net::Endpoint test_vip() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> test_dips(std::size_t n) {
  std::vector<net::Endpoint> dips;
  for (std::size_t i = 0; i < n; ++i) {
    dips.push_back(
        {net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

core::SilkRoadSwitch::Config small_config() {
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(4096);
  return config;
}

workload::DipUpdate add_update(const net::Endpoint& dip, sim::Time at = 0) {
  return {at, test_vip(), dip, workload::UpdateAction::kAddDip,
          workload::UpdateCause::kServiceUpgrade};
}

// ---------------------------------------------------------------------------
// Happy path: one intent, every leg delivered, full 3-step chain, histograms
// ---------------------------------------------------------------------------

TEST(SpanPropagation, HappyPathAcrossTwoSwitchFleet) {
  sim::Simulator sim;
  fault::ControlChannel::Config channel;
  channel.base_delay = 100 * sim::kMicrosecond;
  deploy::SilkRoadFleet fleet(sim, small_config(), /*replicas=*/2, 0xFEE7ULL,
                              channel);
  fleet.add_vip(test_vip(), test_dips(4));

  fleet.request_update(add_update(test_dips(5)[4]));
  sim.run();

  ASSERT_EQ(fleet.spans().total_started(), 1u);
  const obs::UpdateSpan* span = fleet.spans().find(1);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->intent.action, workload::UpdateAction::kAddDip);
  EXPECT_EQ(span->intent.update_id, 1u);
  EXPECT_TRUE(span->has(obs::SpanEventKind::kIntent, obs::kControllerLeg));
  for (std::uint32_t leg = 0; leg < 2; ++leg) {
    EXPECT_TRUE(span->has(obs::SpanEventKind::kChannelSend, leg));
    EXPECT_TRUE(span->has(obs::SpanEventKind::kChannelXmit, leg));
    EXPECT_TRUE(span->has(obs::SpanEventKind::kChannelDeliver, leg));
    EXPECT_TRUE(span->has(obs::SpanEventKind::kQueueStage, leg));
    EXPECT_TRUE(span->has(obs::SpanEventKind::kStep1Open, leg));
    EXPECT_TRUE(span->has(obs::SpanEventKind::kFlip, leg));
    EXPECT_TRUE(span->has(obs::SpanEventKind::kCommit, leg));
    EXPECT_TRUE(span->has(obs::SpanEventKind::kFinish, leg));
    // Per-leg events are in causal order.
    const auto events = span->leg(leg);
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_GE(events[i].at, events[i - 1].at);
    }
  }
  EXPECT_TRUE(fleet.spans().audit_complete().empty());

  // kFinish fed the per-hop propagation histograms (one sample per leg).
  const auto snap = fleet.metrics_snapshot();
  for (const char* hop : {"hop=\"channel\"", "hop=\"queue\"", "hop=\"execute\"",
                          "hop=\"total\""}) {
    const auto* h = snap.find("silkroad_update_propagation_ns", hop);
    ASSERT_NE(h, nullptr) << hop;
    EXPECT_EQ(h->count, 2u) << hop;
  }
  // Channel hop ≈ one base_delay; total covers send..finish.
  const auto* total = snap.find("silkroad_update_propagation_ns",
                                "hop=\"total\"");
  EXPECT_GE(total->sum, 2.0 * 100 * sim::kMicrosecond);

  // Satellite 1: the channel depth gauges exist and read 0 at quiesce.
  ASSERT_NE(snap.find("silkroad_ctrl_inflight", "switch=\"0\""), nullptr);
  EXPECT_EQ(snap.value_of("silkroad_ctrl_inflight", "switch=\"0\""), 0.0);
  EXPECT_EQ(snap.value_of("silkroad_ctrl_reorder_buffer_depth",
                          "switch=\"1\""),
            0.0);
}

// ---------------------------------------------------------------------------
// Resync escalation: the lost update is subsumed, diff children are linked
// ---------------------------------------------------------------------------

TEST(SpanPropagation, ResyncSubsumesLostUpdateAndLinksChildren) {
  sim::Simulator sim;
  fault::ControlChannel::Config channel;
  channel.base_delay = 100 * sim::kMicrosecond;
  channel.retry_timeout = 1 * sim::kMillisecond;
  channel.retry_backoff = 2.0;
  channel.resync_after_retries = 2;
  deploy::SilkRoadFleet fleet(sim, small_config(), /*replicas=*/1, 0xFEE7ULL,
                              channel);
  fleet.add_vip(test_vip(), test_dips(4));

  // Blackout: every transmission (message and ack) in the first 20 ms is
  // lost, so the update exhausts its 2 retries and the channel escalates.
  // The resync itself is a reliable bulk transfer and goes through.
  fleet.set_channel_loss_hook(
      0, [](sim::Time now) { return now < 20 * sim::kMillisecond; });

  fleet.request_update(add_update(test_dips(5)[4]));
  sim.run();

  EXPECT_EQ(fleet.ctrl_resyncs(), 1u);
  EXPECT_TRUE(fleet.converged());

  // The intent span never delivered: its leg ends in drops/retries...
  const obs::UpdateSpan* intent = fleet.spans().find(1);
  ASSERT_NE(intent, nullptr);
  EXPECT_TRUE(intent->has(obs::SpanEventKind::kChannelDrop, 0));
  EXPECT_TRUE(intent->has(obs::SpanEventKind::kChannelRetry, 0));
  EXPECT_FALSE(intent->has(obs::SpanEventKind::kChannelDeliver, 0));

  // ...and is closed by the resync span that subsumed it.
  const obs::UpdateSpan* resync = nullptr;
  for (const auto* s : fleet.spans().all()) {
    if (s->resync) resync = s;
  }
  ASSERT_NE(resync, nullptr);
  EXPECT_EQ(resync->resync_switch, 0u);
  ASSERT_EQ(resync->subsumed.size(), 1u);
  EXPECT_EQ(resync->subsumed[0], intent->id);
  EXPECT_TRUE(resync->has(obs::SpanEventKind::kSubsume, 0));
  EXPECT_TRUE(resync->has(obs::SpanEventKind::kResyncApply, 0));

  // The diff update the resync synthesized is a child span that ran the full
  // 3-step protocol on the switch.
  const obs::UpdateSpan* child = nullptr;
  for (const auto* s : fleet.spans().all()) {
    if (s->parent_id == resync->id) child = s;
  }
  ASSERT_NE(child, nullptr);
  EXPECT_FALSE(child->resync);
  EXPECT_TRUE(child->has(obs::SpanEventKind::kFinish, 0));

  // With the subsume link in place the whole tree audits complete.
  const auto problems = fleet.spans().audit_complete();
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

// ---------------------------------------------------------------------------
// Master switch off: payloads stay untraced and nothing is collected
// ---------------------------------------------------------------------------

TEST(SpanPropagation, DisabledCollectorStampsNothing) {
  sim::Simulator sim;
  deploy::SilkRoadFleet fleet(sim, small_config(), /*replicas=*/1);
  fleet.spans().set_enabled(false);
  fleet.add_vip(test_vip(), test_dips(4));

  fleet.request_update(add_update(test_dips(5)[4]));
  sim.run();

  EXPECT_TRUE(fleet.converged());  // tracing off, behavior unchanged
  EXPECT_EQ(fleet.spans().total_started(), 0u);
  EXPECT_EQ(fleet.spans().size(), 0u);
  EXPECT_EQ(fleet.spans().events_recorded(), 0u);
}

// ---------------------------------------------------------------------------
// Scrape routes: /spans and the /update/<id> prefix route
// ---------------------------------------------------------------------------

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(SpanScrape, UpdateEndpointServesOneSpan) {
  obs::SpanCollector spans;
  workload::DipUpdate update = add_update(test_dips(1)[0]);
  const std::uint64_t id = spans.begin_update(update, 0);
  spans.record(id, obs::SpanEventKind::kChannelSend, 0, 10);
  spans.record(id, obs::SpanEventKind::kFinish, 0, 500);

  obs::ScrapeServer server;  // ephemeral port
  server.handle("/spans", "application/json",
                [&spans] { return spans.to_json(); });
  server.handle_prefix("/update", "application/json",
                       [&spans](const std::string& suffix) {
                         char* end = nullptr;
                         const unsigned long long want =
                             std::strtoull(suffix.c_str(), &end, 10);
                         if (end == suffix.c_str() || *end != '\0') {
                           return std::string();
                         }
                         return spans.span_json(want);
                       });
  ASSERT_TRUE(server.start());

  const std::string all = http_get(server.port(), "/spans");
  EXPECT_NE(all.find("200 OK"), std::string::npos);
  EXPECT_NE(all.find("\"spans\""), std::string::npos);

  const std::string one = http_get(server.port(), "/update/1");
  EXPECT_NE(one.find("200 OK"), std::string::npos);
  EXPECT_NE(one.find("\"id\""), std::string::npos);
  EXPECT_NE(one.find("channel-send"), std::string::npos)
      << "expected event kinds in span json, got: " << one;

  // Unknown id and non-numeric suffix both 404 (span_json -> "null" is a
  // valid body, so probe an id the collector never minted).
  EXPECT_NE(http_get(server.port(), "/update/abc").find("404"),
            std::string::npos);
  server.stop();
}

// ---------------------------------------------------------------------------
// Acceptance criterion: forced PCC violation -> ForensicsReport interleaving
// the flow journey with the overlapping update span's retransmit leg
// ---------------------------------------------------------------------------

TEST(SpanForensics, ForcedViolationReportInterleavesJourneyAndSpan) {
  sim::Simulator sim;

  // Violation recipe: disable the TransitTable (ablation, Fig. 15) and slow
  // the switch CPU to a crawl, so a standing backlog of flows is pending
  // insertion when a pool-growing update flips the VIPTable. Pending flows
  // are mapped by VIPTable, so ~1/9 of them remap onto the new DIP — a PCC
  // violation the audit cannot exempt (every original server stays alive).
  core::SilkRoadSwitch::Config config = small_config();
  config.use_transit_table = false;
  config.cpu.tasks_per_second = 50;

  fault::ControlChannel::Config channel;
  channel.base_delay = 100 * sim::kMicrosecond;
  channel.retry_timeout = 1 * sim::kMillisecond;
  channel.resync_after_retries = 10;
  deploy::SilkRoadFleet fleet(sim, config, /*replicas=*/1, 0xFEE7ULL, channel);

  // The update is sent at t=1s; drop its first transmission so the span
  // carries a retransmit leg (kChannelDrop + kChannelRetry) into the report.
  fleet.set_channel_loss_hook(0, [](sim::Time now) {
    return now >= sim::kSecond && now < sim::kSecond + 500 * sim::kMicrosecond;
  });

  lb::ScenarioConfig scenario_config;
  scenario_config.horizon = 3 * sim::kSecond;
  scenario_config.seed = 7;
  workload::FlowGenerator::VipLoad load;
  load.vip = test_vip();
  load.arrivals_per_min = 6000;  // 100 flows/s >> 50 CPU tasks/s
  load.profile = {"span-forensics", 2.0, 10.0, 1e6, 5e6};
  scenario_config.vip_loads.push_back(load);
  scenario_config.dip_pools.push_back(test_dips(8));
  scenario_config.updates.push_back(
      add_update(test_dips(9)[8], sim::kSecond));
  lb::Scenario scenario(sim, fleet, scenario_config);

  std::vector<net::FiveTuple> violating;
  scenario.set_violation_callback(
      [&](const net::FiveTuple& flow, sim::Time) { violating.push_back(flow); });

  const lb::ScenarioStats stats = scenario.run();
  ASSERT_GT(stats.violations, 0u)
      << "recipe failed to force a PCC violation";
  ASSERT_FALSE(violating.empty());

  const std::uint64_t flow_id = net::FiveTupleHash{}(violating.front());
  const obs::ForensicsReport report = obs::assemble_forensics(
      fleet.switch_at(0).trace(), &fleet.spans(), flow_id,
      "span_test: forced PCC violation");

  // The report found the violating flow's journey...
  ASSERT_TRUE(report.journey.has_value());
  EXPECT_EQ(report.flow_id, flow_id);
  EXPECT_FALSE(report.journey->events.empty());

  // ...and at least one update span overlapping it, whose channel leg shows
  // the injected drop and the retransmission that recovered from it.
  ASSERT_FALSE(report.spans.empty());
  bool saw_retransmit_leg = false;
  for (const auto& span : report.spans) {
    if (span.has(obs::SpanEventKind::kChannelDrop, 0) &&
        span.has(obs::SpanEventKind::kChannelRetry, 0) &&
        span.has(obs::SpanEventKind::kFlip, 0)) {
      saw_retransmit_leg = true;
    }
  }
  EXPECT_TRUE(saw_retransmit_leg)
      << "no overlapping span carries the retransmit leg";

  // The merged timeline tells one story, ordered by sim time, with both the
  // flow's packets and the update's lifecycle in it.
  ASSERT_FALSE(report.timeline.empty());
  bool saw_flow = false;
  bool saw_update = false;
  for (std::size_t i = 0; i < report.timeline.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(report.timeline[i].at, report.timeline[i - 1].at);
    }
    if (report.timeline[i].source == "flow") saw_flow = true;
    if (report.timeline[i].source.rfind("update#", 0) == 0) saw_update = true;
  }
  EXPECT_TRUE(saw_flow);
  EXPECT_TRUE(saw_update);

  // Both renderings mention the span's channel trouble.
  EXPECT_NE(report.to_text().find("channel-retry"), std::string::npos);
  EXPECT_NE(report.to_json().find("\"timeline\""), std::string::npos);

  // And the report lands on disk under SILKROAD_TELEMETRY_DIR.
  char dir_template[] = "/tmp/silkroad_span_test_XXXXXX";
  char* dir = ::mkdtemp(dir_template);
  ASSERT_NE(dir, nullptr);
  ASSERT_TRUE(obs::write_forensics(report, dir, "forced_violation"));
  for (const char* ext : {".txt", ".json"}) {
    const std::string path = std::string(dir) + "/forced_violation" + ext;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_FALSE(contents.empty()) << path;
    in.close();
    ::unlink(path.c_str());
  }
  ::rmdir(dir);
}

}  // namespace
}  // namespace silkroad
