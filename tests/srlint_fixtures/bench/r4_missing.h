// srlint-expect: R4
/* #pragma once — hidden inside a comment, does not count */
int bench_helper();
