// A header with the guard in place — clean, even with leading comments and
// unusual spacing on the directive.
#  pragma   once

int bench_helper_ok();
