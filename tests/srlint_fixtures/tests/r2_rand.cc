// R2 patrols the whole tree, tests/ included; R1 patrols only src/, so the
// assert() below is clean HERE (and only here).
#include <cassert>
#include <cstdlib>

struct Dice {
  int rand() { return 4; }
};

int positive() {
  int a = rand();       // srlint-expect: R2
  int b = std::rand();  // srlint-expect: R2
  return a + b;
}

int negatives(Dice& dice, int* p) {
  assert(p != nullptr);  // R1 is src/-only — clean in tests/
  int strand_id = 7;     // `strand` / `rand_max` are different identifiers
  int rand_max = 9;
  return dice.rand() + strand_id + rand_max;  // member .rand() — clean
}
