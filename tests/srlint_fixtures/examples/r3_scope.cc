// R3 patrols only src/ — examples may use iostream freely.
#include <iostream>

int main() {
  std::cout << "fixtures are never compiled, but stay plausible\n";
  return 0;
}
