// R3: <iostream> in src/ — the directive below is a real include; the
// commented-out one and the string mention are not.
#include <iostream>  // srlint-expect: R3
// #include <iostream>
#include <string>

std::string banner() { return "#include <iostream>"; }
