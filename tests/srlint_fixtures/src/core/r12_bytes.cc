// R12: SRAM byte-count calls folded into arithmetic outside the capacity
// single-sources (src/asic/resources.*, src/asic/sram.h,
// src/core/memory_model.*, src/obs/capacity.*) — totals belong to
// asic::silkroad_usage / obs::ResourceLedger.
#include "asic/sram.h"
#include "core/memory_model.h"

struct Pool {
  std::uint64_t pool_table_bytes() const;
  std::uint64_t byte_count() const;
};

std::uint64_t positives(const Pool& pool, const Pool* ptr,
                        std::uint64_t entries) {
  // Summing two model calls re-derives a total.
  std::uint64_t total =
      silkroad::core::conn_table_bytes(entries) +  // srlint-expect: R12
      silkroad::core::dip_pool_table_bytes(100, 4, false);  // srlint-expect: R12
  // Compound assignment is aggregation too (`+=` lexes as two tokens).
  total += pool.pool_table_bytes();  // srlint-expect: R12
  total -= ptr->byte_count();  // srlint-expect: R12
  // Scaling a per-entry cost inline.
  total += entries * silkroad::asic::bits_to_bytes(28);  // srlint-expect: R12
  return total;
}

std::uint64_t negatives(const Pool& pool, std::uint64_t limit) {
  // Snapshotting one call into a variable is not aggregation.
  const std::uint64_t bytes = pool.pool_table_bytes();
  // Comparisons never flag: ==, !=, <=, >= keep their first char.
  if (pool.byte_count() >= limit || bytes == limit) return 0;
  // Forwarding a single result is clean.
  return silkroad::asic::bits_to_bytes(112);
  // byte_count() + 1 in a comment is clean
}

const char* strings() {
  return "sram_bytes() + pool_table_bytes() in a string is clean";
}

std::uint64_t suppressed(const Pool& pool, std::uint64_t base) {
  // Suppressed with a reason: a justified attribution site.
  return base + pool.pool_table_bytes();  // srlint: allow(R12) attribution
}
