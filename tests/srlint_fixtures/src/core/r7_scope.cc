// R7 patrols only src/fault/ and src/deploy/ — the per-switch TraceRing
// belongs to the switch that owns it, so core/ may use it freely.

void fine(TraceRing* ring) {
  auto begin = TraceEventKind::kUpdateBegin;
  (void)begin;
  (void)ring;
}
