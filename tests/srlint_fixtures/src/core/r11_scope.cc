// R11 patrols src/lb/ and src/asic/ only: a plain counter() in src/core/ is
// out of scope (the switch's control-plane metrics live here by design).
#include "obs/metrics.h"

void clean(silkroad::obs::MetricsRegistry& registry) {
  auto* c = registry.counter("control_events");
  auto* h = registry.histogram("update_duration_ns");
  (void)c;
  (void)h;
}
