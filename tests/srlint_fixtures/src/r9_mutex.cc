// R9: bare std::mutex family in src/ — every lock must go through the
// annotated sr:: wrappers so clang -Wthread-safety sees it.
#include <mutex>

#include "check/thread_annotations.h"

namespace my {
struct mutex {};  // a different mutex — my::mutex below is clean
}  // namespace my

void positive() {
  std::mutex mu;  // srlint-expect: R9
  std::
      mutex mu2;  // srlint-expect: R9
  const std::lock_guard<  // srlint-expect: R9
      std::mutex>  // srlint-expect: R9
      lk(mu);
  std::unique_lock<std::mutex> ul;  // srlint-expect: R9 R9
  (void)mu2;
  (void)ul;
}

void negatives() {
  silkroad::sr::Mutex mu;  // the annotated wrapper — clean
  const silkroad::sr::MutexLock lock(mu);
  my::mutex theirs;  // scoped in another namespace — clean
  (void)theirs;
  // std::mutex in a comment is clean
  const char* s = "std::lock_guard<std::mutex> in a string is clean";
  (void)s;
}
