// R5 and R6 both carve out src/obs/ — the observability layer owns process
// output and the snapshot-view structs assembled from the registry.
#include <cstdio>

struct WindowStats {
  double p99 = 0.0;
};

void dump(const WindowStats& w) { printf("p99=%f\n", w.p99); }
