// R14 carve-out: src/obs/convergence.cc IS the sanctioned digest
// implementation (obs::VipDigest / obs::FleetObserver), so its XOR folds of
// the hash primitives are the single source the rule protects — every line
// here must stay silent.
#include "net/hash.h"

std::uint64_t member_token(std::uint64_t vip_key, std::uint64_t dip_hash) {
  return silkroad::net::mix64(vip_key ^ silkroad::net::mix64(dip_hash));
}

std::uint64_t fold(std::uint64_t digest, std::uint64_t token) {
  digest ^= silkroad::net::mix64(token);
  return digest ^ silkroad::net::hash_bytes(nullptr, token);
}
