// R13: resync sessions begin only through ControlChannel::force_resync() —
// directly invoking the fleet's session opener or the channel's stored
// ResyncFn skips the window wipe, the epoch bump, and the session span.
// (src/fault/control_channel.cc itself is the exempted invocation site.)
#include "deploy/fleet.h"

struct Fleet {
  void begin_resync_session(std::size_t index);  // declaration: clean
  std::function<void()> resync_;
  void restore(std::size_t index);
};

void Fleet::restore(std::size_t index) {
  begin_resync_session(index);  // srlint-expect: R13
  this->begin_resync_session(index);  // srlint-expect: R13
  resync_();  // srlint-expect: R13
}

struct Channel {
  std::function<void()> resync_;
  void escalate();
};

void Channel::escalate() {
  this->resync_();  // srlint-expect: R13
}

// Qualified definition of the opener itself is clean (not an invocation).
void Fleet::begin_resync_session(std::size_t index) {
  (void)index;
  // begin_resync_session() in a comment is clean
}

const char* strings() {
  return "begin_resync_session() and resync_() in a string are clean";
}

void suppressed(Fleet& fleet) {
  // The channel's ResyncFn binding site is the sanctioned suppression.
  fleet.begin_resync_session(0);  // srlint: allow(R13) ResyncFn binding
}
