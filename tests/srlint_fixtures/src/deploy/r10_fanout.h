// R10 companion header: the unordered members are declared HERE and iterated
// in r10_fanout.cc — the engine must merge this header's symbol table into
// the .cc's model to see them.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

using FlowSet = std::unordered_set<int>;

class Fanout {
 public:
  void fan_out();
  void drain();

 private:
  void send(int dip);
  void request_update(int dip);
  std::unordered_map<int, int> members_;
  FlowSet flows_;
  std::vector<int> order_;
};
