// R14: hash primitives XOR-folded into an ad-hoc membership digest in the
// digest-consuming directories (src/deploy/, src/obs/) — per-VIP membership
// digests are single-sourced by obs::VipDigest / obs::FleetObserver
// (src/obs/convergence.{h,cc} is the exempted implementation).
#include "net/hash.h"

std::uint64_t positives(const std::vector<std::uint64_t>& members,
                        std::uint64_t seed) {
  // Folding hash results with ^/^= is the banned digest shape.
  std::uint64_t digest = 0;
  for (const std::uint64_t m : members) {
    digest ^= silkroad::net::mix64(m);  // srlint-expect: R14
  }
  digest = digest ^ silkroad::net::hash_bytes(nullptr, seed);  // srlint-expect: R14
  // A fold on the right-hand side of the ^ is the same shape.
  return silkroad::net::mix64(seed) ^ digest;  // srlint-expect: R14
}

std::uint64_t negatives(const silkroad::net::FiveTuple& flow,
                        std::uint64_t seed, std::uint64_t limit) {
  // Plain assignment / ranking is not digest folding: ECMP weight.
  const std::uint64_t weight = silkroad::net::hash_five_tuple(flow, seed);
  // Arithmetic combination is not the XOR-fold shape.
  const std::uint64_t mixed = silkroad::net::mix64(seed) + weight;
  // Comparisons never flag.
  if (silkroad::net::mix64(limit) == mixed) return 0;
  // A declaration of an unrelated symbol is clean.
  std::uint64_t mix64;
  (void)mix64;
  return weight;
  // digest ^= mix64(m) in a comment is clean
}

const char* strings() {
  return "digest ^= mix64(m) ^ hash_bytes(p, s) in a string is clean";
}

std::uint64_t suppressed(std::uint64_t channel_seed, std::uint64_t salt) {
  // Non-digest XOR uses (seed derivation) carry a justified allow.
  return channel_seed ^ silkroad::net::mix64(salt);  // srlint: allow(R14) seed derivation
}
