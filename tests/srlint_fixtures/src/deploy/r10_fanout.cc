// R10: unordered iteration feeding channel/protocol calls. Iteration order
// of unordered containers is implementation-defined, so letting it decide
// the order of send()/request_update() calls makes runs irreproducible.
#include "deploy/r10_fanout.h"

#include <algorithm>

void Fanout::fan_out() {
  for (const auto& [vip, dip] : members_) {  // srlint-expect: R10
    send(dip);
  }
  // Single-statement body (no braces) must be caught too; flows_ is
  // unordered via the FlowSet alias in the companion header.
  for (int f : flows_) send(f);  // srlint-expect: R10
}

void Fanout::drain() {
  // The disciplined version: snapshot, sort, then issue — clean.
  std::vector<int> snapshot;
  for (const auto& [vip, dip] : members_) {
    snapshot.push_back(dip);
  }
  std::sort(snapshot.begin(), snapshot.end());
  for (int dip : snapshot) {
    request_update(dip);
  }
  // A vector member is ordered — clean even with a sink in the body.
  for (int dip : order_) {
    send(dip);
  }
  // Method-call results are NOT the container: members_.at(0) hands back a
  // value, so this must not be mistaken for map iteration.
  for (int x : members_.at(0)) {
    send(x);
  }
}
