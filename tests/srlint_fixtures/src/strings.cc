// All-negative file: every banned token below sits inside a comment, a
// string, a char literal, or a raw string — the token-aware lexer must see
// none of it. A regex linter trips over most of these.

/* Block comment spanning lines with contraband:
   assert(x); rand(); std::mutex mu; printf("x");
   TraceEventKind::kUpdateBegin getenv("PATH")
*/

const char* kPlain = "assert(true); rand(); std::lock_guard<std::mutex> l;";
const char* kEscaped = "quote \" then rand() still inside the literal";
const char* kRaw = R"(printf("hi"); std::mutex m; getenv("HOME"))";
const char* kRawDelim = R"xy(a ")" inside: rand() and time(nullptr) )xy";
const char* kMultiRaw = R"(line one rand()
line two std::mutex
line three assert(p))";
const char kQuote = '"';  // the char literal must not open a string
const char* kAfter = "rand()";  // still lexed correctly after the char

// Backslash-continued line comment — the next physical line is comment too: \
   rand(); assert(p); std::mutex hidden;

int working_code_after_all_of_it = 1;
