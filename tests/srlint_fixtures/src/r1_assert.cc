// R1: raw assert() in src/ — positive and negative cases.
#include <cassert>

void positive(int* p) {
  assert(p != nullptr);  // srlint-expect: R1
}

void negatives(int* p) {
  static_assert(sizeof(int) == 4, "distinct token, never matches");
  // assert(p) — inside a comment, invisible to the lexer's code view
  const char* doc = "call assert(p) here";  // inside a string literal
  (void)doc;
  (void)p;
}
