// R8: wall-clock / environment nondeterminism in src/ outside src/sim/.
#include <chrono>
#include <cstdlib>
#include <ctime>

struct Meter {
  double time(int samples) { return samples * 0.5; }
};

void positive() {
  const char* home = std::getenv("HOME");             // srlint-expect: R8
  auto now = std::chrono::system_clock::now();        // srlint-expect: R8
  auto tick = std::chrono::steady_clock::now();       // srlint-expect: R8
  long stamp = time(nullptr);                         // srlint-expect: R8
  (void)home;
  (void)now;
  (void)tick;
  (void)stamp;
}

// Raw strings span lines — the violation AFTER one must still carry the
// right line number.
const char* kQuery = R"sql(
  SELECT time(now) FROM clocks;
  -- getenv("PATH") inside the raw string is not code
)sql";

void after_raw_string() {
  const char* shell = getenv("SHELL");  // srlint-expect: R8
  (void)shell;
}

void negatives(Meter& m) {
  double d = m.time(3);  // member call — a different symbol
  (void)d;
  // std::chrono::system_clock in a comment is clean
  auto dur = std::chrono::milliseconds(5);  // durations are deterministic
  (void)dur;
}
