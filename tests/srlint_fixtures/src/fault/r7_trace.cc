// R7: raw update-lifecycle trace use inside src/fault/. Fixtures are never
// compiled, so the trace types are referenced without declarations here —
// declaring them locally would itself mention TraceRing and trip the rule.

void positive(TraceRing* ring) {  // srlint-expect: R7
  auto begin = TraceEventKind::kUpdateBegin;  // srlint-expect: R7
  (void)begin;
  (void)ring;
}

void negative() {
  auto drop = TraceEventKind::kPacketDrop;  // not kUpdate* — clean
  (void)drop;
  // TraceRing mentioned in a comment only — clean
  const char* s = "TraceRing in a string is clean too";
  (void)s;
}
