// R11: plain registry counter()/histogram() in src/lb/ (and src/asic/) —
// the packet path must stripe its bumps via the sharded variants.
#include "obs/metrics.h"
#include "obs/sharded.h"

void positives(silkroad::obs::MetricsRegistry& registry,
               silkroad::obs::MetricsRegistry* reg_ptr) {
  auto* c = registry.counter("pkts");  // srlint-expect: R11
  auto* h = registry.histogram(  // srlint-expect: R11
      "lat_ns");
  auto* c2 = reg_ptr->counter("drops");  // srlint-expect: R11
  (void)c;
  (void)h;
  (void)c2;
}

void negatives(silkroad::obs::MetricsRegistry& registry) {
  // The sharded variants are the whole point — clean.
  auto* sc = registry.sharded_counter("pkts");
  auto* sh = registry.sharded_histogram("lat_ns");
  // Gauges stay plain by design (rare CAS adds, no per-packet bump).
  auto* g = registry.gauge("active");
  // A free function named counter() is not a registry factory — clean.
  int counter(int);
  (void)counter(0);
  // registry.counter( in a comment is clean
  const char* s = "registry.counter(\"in a string is clean\")";
  // Suppressed with a reason: config-time bookkeeping, one bump per update.
  auto* ok =
      registry.counter("updates");  // srlint: allow(R11) control-plane count
  (void)sc;
  (void)sh;
  (void)g;
  (void)s;
  (void)ok;
}
