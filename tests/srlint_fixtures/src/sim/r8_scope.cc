// R8 exempts src/sim/ — the simulator layer is where wall-clock access is
// allowed to live (seed derivation, host-time bridging).
#include <cstdlib>

const char* sim_override() { return std::getenv("SILKROAD_SIM_SEED"); }
