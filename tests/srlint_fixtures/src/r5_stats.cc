// R5: ad-hoc Stats structs in src/ outside src/obs/.

struct ConnStats {  // srlint-expect: R5
  int hits = 0;
};

struct StatsHelper {  // name does not END with Stats — clean
  int x = 0;
};

// struct CommentStats — in a comment, clean
const char* kDoc = "struct StringStats";  // in a string, clean
