// Suppression mechanics: allow() with a reason silences a rule on its
// target line; S1/S2 police the suppressions themselves.
#include <cstdlib>

// srlint: allow(R8) standalone form: the justification block above the
// statement covers the next code line, comment continuations included.
const char* kHome = std::getenv("HOME");

const char* kShell = std::getenv("SHELL");  // srlint: allow(R8) same-line form

/* srlint-expect: S1 */ // srlint: allow(R8)
const char* kNoReason = std::getenv("TERM");  // srlint-expect: R8

/* srlint-expect: S1 */ // srlint: allow(R99) no such rule exists
int unknown_rule_target = 0;

/* srlint-expect: S2 */ // srlint: allow(R2) precautionary allow with nothing to suppress
int nothing_here = 0;

/* srlint-expect: S1 */ // srlint: allowing things casually
int malformed_marker_target = 0;
