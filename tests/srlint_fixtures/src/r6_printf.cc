// R6: printf/fprintf in src/ outside src/obs/ and src/check/.
#include <cstdio>

struct Logger {
  void printf(const char* fmt) { (void)fmt; }
};

void positive() {
  printf("direct call\n");        // srlint-expect: R6
  std::printf("qualified\n");     // srlint-expect: R6
  fprintf(stderr, "to stderr\n");  // srlint-expect: R6
}

void negatives(Logger& log, Logger* plog) {
  char buf[32];
  snprintf(buf, sizeof buf, "buffer formatting is fine");
  log.printf("member call");
  plog->printf("member call through pointer");
  // printf("commented out")
  const char* s = "printf(\"in a string\")";
  (void)s;
}
