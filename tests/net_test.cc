#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "net/endpoint.h"
#include "net/five_tuple.h"
#include "net/hash.h"
#include "net/ip_address.h"

namespace silkroad::net {
namespace {

TEST(IpAddress, V4RoundTrip) {
  const auto a = IpAddress::v4(0x0A000001);
  EXPECT_TRUE(a.is_v4());
  EXPECT_EQ(a.to_string(), "10.0.0.1");
  EXPECT_EQ(a.v4_value(), 0x0A000001u);
  EXPECT_EQ(a.wire_bytes(), 4u);
  const auto parsed = IpAddress::parse("10.0.0.1");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, a);
}

TEST(IpAddress, V4ParseEdgeCases) {
  EXPECT_TRUE(IpAddress::parse("0.0.0.0").has_value());
  EXPECT_TRUE(IpAddress::parse("255.255.255.255").has_value());
  EXPECT_FALSE(IpAddress::parse("256.0.0.1").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IpAddress::parse("").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4 ").has_value());
}

TEST(IpAddress, V6RoundTrip) {
  const auto a = IpAddress::parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->is_v6());
  EXPECT_EQ(a->wire_bytes(), 16u);
  EXPECT_EQ(a->to_string(), "2001:db8::1");
}

TEST(IpAddress, V6ZeroCompression) {
  EXPECT_EQ(IpAddress::v6(0, 0).to_string(), "::");
  EXPECT_EQ(IpAddress::v6(0, 1).to_string(), "::1");
  EXPECT_EQ(IpAddress::parse("1::")->to_string(), "1::");
  EXPECT_EQ(IpAddress::parse("1:0:0:2::3")->to_string(), "1:0:0:2::3");
  // Full address with no zero runs.
  const auto full = IpAddress::parse("1:2:3:4:5:6:7:8");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->to_string(), "1:2:3:4:5:6:7:8");
}

TEST(IpAddress, V6ParseRejectsMalformed) {
  EXPECT_FALSE(IpAddress::parse("1::2::3").has_value());
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(IpAddress::parse("12345::").has_value());
  EXPECT_FALSE(IpAddress::parse("g::1").has_value());
  // "::" replacing zero groups must actually shorten the address.
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7::8").has_value());
}

TEST(IpAddress, V6HiLoConstructor) {
  const auto a = IpAddress::v6(0x20010DB800000000ULL, 0x1ULL);
  EXPECT_EQ(a.to_string(), "2001:db8::1");
}

TEST(IpAddress, OrderingIsConsistent) {
  const auto a = IpAddress::v4(1);
  const auto b = IpAddress::v4(2);
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(Endpoint, RoundTrip) {
  const Endpoint e{IpAddress::v4(0x14000001), 80};
  EXPECT_EQ(e.to_string(), "20.0.0.1:80");
  const auto parsed = Endpoint::parse("20.0.0.1:80");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, e);
  EXPECT_EQ(e.wire_bytes(), 6u);
}

TEST(Endpoint, V6RoundTrip) {
  const auto parsed = Endpoint::parse("[2001:db8::1]:443");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->port, 443);
  EXPECT_EQ(parsed->to_string(), "[2001:db8::1]:443");
  EXPECT_EQ(parsed->wire_bytes(), 18u);
}

TEST(Endpoint, ParseRejectsMalformed) {
  EXPECT_FALSE(Endpoint::parse("10.0.0.1").has_value());
  EXPECT_FALSE(Endpoint::parse("10.0.0.1:99999").has_value());
  EXPECT_FALSE(Endpoint::parse("[2001:db8::1]443").has_value());
  EXPECT_FALSE(Endpoint::parse("[2001:db8::1]").has_value());
  EXPECT_FALSE(Endpoint::parse(":80").has_value());
}

FiveTuple make_tuple(std::uint32_t client, std::uint16_t port) {
  return FiveTuple{{IpAddress::v4(client), port},
                   {IpAddress::v4(0x14000001), 80},
                   Protocol::kTcp};
}

TEST(FiveTuple, WireBytesMatchPaper) {
  // Paper footnote 1: an IPv6 5-tuple key is 37 bytes.
  const FiveTuple v6{{IpAddress::v6(1, 2), 1234},
                     {IpAddress::v6(3, 4), 80},
                     Protocol::kTcp};
  EXPECT_EQ(v6.wire_bytes(), 37u);
  // IPv4: 4+4 addr + 2+2 ports + 1 proto = 13 bytes.
  EXPECT_EQ(make_tuple(1, 2).wire_bytes(), 13u);
}

TEST(Hash, DeterministicAndSeedSensitive) {
  const auto t = make_tuple(0x01020304, 1234);
  EXPECT_EQ(hash_five_tuple(t, 7), hash_five_tuple(t, 7));
  EXPECT_NE(hash_five_tuple(t, 7), hash_five_tuple(t, 8));
}

TEST(Hash, DistinctTuplesRarelyCollide) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint32_t i = 0; i < 20000; ++i) {
    seen.insert(hash_five_tuple(make_tuple(i, 1000), 42));
  }
  EXPECT_EQ(seen.size(), 20000u);  // 64-bit collisions at 20K keys: ~1e-11
}

TEST(Hash, V4DoesNotAliasV6) {
  // An IPv4 address zero-extended to 16 bytes must not hash like the
  // corresponding IPv6 address.
  FiveTuple v4 = make_tuple(0x0A000001, 80);
  FiveTuple v6 = v4;
  std::array<std::uint8_t, 16> raw{};
  raw[0] = 10;
  raw[3] = 1;
  v6.src.ip = IpAddress::v6(raw);
  EXPECT_NE(hash_five_tuple(v4, 1), hash_five_tuple(v6, 1));
}

TEST(Hash, Crc32cKnownVector) {
  // CRC32-C("123456789") = 0xE3069283 (RFC 3720 appendix test vector).
  const char* data = "123456789";
  const std::uint32_t crc = crc32c(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data), 9));
  EXPECT_EQ(crc, 0xE3069283u);
}

TEST(Hash, DigestWidthMasks) {
  const auto t = make_tuple(99, 42);
  EXPECT_LT(connection_digest(t, 16), 1u << 16);
  EXPECT_LT(connection_digest(t, 24), 1u << 24);
  EXPECT_LE(connection_digest(t, 1), 1u);
  // Digest must differ from the low bits of addressing hashes (independence
  // sanity check: at least not identical for a sample of tuples).
  int same = 0;
  for (std::uint32_t i = 0; i < 256; ++i) {
    const auto tuple = make_tuple(i, 1);
    if (connection_digest(tuple, 16) ==
        (hash_five_tuple(tuple, 0) & 0xFFFF)) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

class DigestCollisionRate : public ::testing::TestWithParam<unsigned> {};

TEST_P(DigestCollisionRate, MatchesBirthdayExpectation) {
  const unsigned bits = GetParam();
  const std::size_t n = 4096;
  std::unordered_set<std::uint32_t> seen;
  std::size_t collisions = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!seen.insert(connection_digest(make_tuple(i, 7), bits)).second) {
      ++collisions;
    }
  }
  // Expected collisions ~ n^2 / 2^(bits+1); allow generous slack.
  const double expected =
      static_cast<double>(n) * n / std::pow(2.0, bits + 1);
  EXPECT_LE(static_cast<double>(collisions), expected * 3 + 8);
  if (bits >= 28) {
    EXPECT_EQ(collisions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DigestCollisionRate,
                         ::testing::Values(12u, 16u, 20u, 24u, 28u, 32u));

}  // namespace
}  // namespace silkroad::net
