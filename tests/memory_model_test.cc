#include <gtest/gtest.h>

#include "core/memory_model.h"

namespace silkroad::core {
namespace {

TEST(MemoryModel, NaiveIpv6MatchesPaperFootnote) {
  // Footnote 1: 37 B key + 18 B action + ~2 B overhead per IPv6 entry;
  // §4.2: 10M connections need at least 550 MB.
  const auto layout = naive_entry(true);
  EXPECT_EQ(layout.match_bits, 37u * 8);
  EXPECT_EQ(layout.action_bits, 18u * 8);
  const auto bytes = conn_table_bytes(10'000'000, layout);
  EXPECT_GE(bytes, 550'000'000u);
  EXPECT_LE(bytes, 700'000'000u);
}

TEST(MemoryModel, SilkRoadEntryIs28Bits) {
  EXPECT_EQ(digest_version_entry().total(), 28u);
  // 10M connections fit in ~35 MB — inside a 50-100 MB ASIC (§6.1).
  const auto bytes = conn_table_bytes(10'000'000, digest_version_entry());
  EXPECT_NEAR(static_cast<double>(bytes), 35e6, 1e6);
}

TEST(MemoryModel, SavingsInPaperBand) {
  // Fig. 14: every cluster sees >= 40% reduction; digest+version on IPv6
  // reaches ~95%.
  const std::size_t conns = 5'000'000;
  const auto naive_v6 = conn_table_bytes(conns, naive_entry(true));
  const auto digest_v6 = conn_table_bytes(conns, digest_entry(true));
  const auto full_v6 = conn_table_bytes(conns, digest_version_entry());
  EXPECT_GT(memory_saving(naive_v6, digest_v6), 0.40);
  EXPECT_GT(memory_saving(naive_v6, full_v6), 0.90);

  const auto naive_v4 = conn_table_bytes(conns, naive_entry(false));
  const auto digest_v4 = conn_table_bytes(conns, digest_entry(false));
  EXPECT_GT(memory_saving(naive_v4, digest_v4), 0.40);
}

TEST(MemoryModel, DigestVersionIndependentOfFamily) {
  const auto v4 = silkroad_footprint(1'000'000, 1000, 4, false);
  const auto v6 = silkroad_footprint(1'000'000, 1000, 4, true);
  EXPECT_EQ(v4.conn_table, v6.conn_table);
  EXPECT_LT(v4.dip_pool_table, v6.dip_pool_table);
}

TEST(MemoryModel, PeakBackendBreakdownMatchesPaper) {
  // §6.1: the peak Backend stores 15M conns; ConnTable is 91.7% of the
  // 58 MB total, DIPPoolTable hosts 64 versions of 4187 IPv6 DIPs.
  const auto fp = silkroad_footprint(15'000'000, 4187, 64, true);
  const double conn_share =
      static_cast<double>(fp.conn_table) / static_cast<double>(fp.total());
  EXPECT_GT(conn_share, 0.75);
  EXPECT_NEAR(static_cast<double>(fp.total()) / 1e6, 58.0, 10.0);
}

TEST(MemoryModel, SlbCountFromPacketRate) {
  // §2.2: 15 Tbps needs ~1500 SLBs at NIC line rate; in pps terms a cluster
  // at 120 Mpps needs 10 SLBs at 12 Mpps each.
  EXPECT_EQ(slbs_required(120.0), 10u);
  EXPECT_EQ(slbs_required(121.0), 11u);
  EXPECT_EQ(slbs_required(0.0), 0u);
}

TEST(MemoryModel, SilkRoadCountFromConnsAndThroughput) {
  EXPECT_EQ(silkroads_required(5'000'000, 1.0), 1u);
  EXPECT_EQ(silkroads_required(25'000'000, 1.0), 3u);   // conn-bound
  EXPECT_EQ(silkroads_required(1'000'000, 20.0), 4u);   // throughput-bound
}

TEST(MemoryModel, CostRatiosNearPaperClaims) {
  // §6.1: ASIC processing is ~1/500 the power and ~1/250 the capital cost.
  const auto cmp = cost_comparison();
  EXPECT_NEAR(cmp.power_ratio, 500.0, 100.0);
  EXPECT_NEAR(cmp.cost_ratio, 250.0, 50.0);
}

}  // namespace
}  // namespace silkroad::core
