#include <gtest/gtest.h>

#include <vector>

#include "asic/cuckoo_table.h"

namespace silkroad::asic {
namespace {

net::FiveTuple make_flow(std::uint32_t client, std::uint16_t port = 1000) {
  return net::FiveTuple{{net::IpAddress::v4(0x0B000000 + client), port},
                        {net::IpAddress::v4(0x14000001), 80},
                        net::Protocol::kTcp};
}

CuckooConfig small_config() {
  CuckooConfig config;
  config.stages = 4;
  config.buckets_per_stage = 64;
  config.ways = 4;
  config.digest_bits = 16;
  return config;
}

TEST(DigestCuckooTable, InsertLookupErase) {
  DigestCuckooTable table(small_config());
  const auto flow = make_flow(1);
  EXPECT_FALSE(table.lookup(flow).has_value());
  EXPECT_TRUE(table.insert(flow, 5).inserted);
  const auto hit = table.lookup(flow);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value, 5u);
  EXPECT_FALSE(table.is_false_positive(flow, hit->slot));
  EXPECT_TRUE(table.contains(flow));
  EXPECT_EQ(table.exact_value(flow), 5u);
  EXPECT_TRUE(table.erase(flow));
  EXPECT_FALSE(table.lookup(flow).has_value());
  EXPECT_FALSE(table.erase(flow));
}

TEST(DigestCuckooTable, ReinsertRefreshesValue) {
  DigestCuckooTable table(small_config());
  const auto flow = make_flow(1);
  EXPECT_TRUE(table.insert(flow, 5).inserted);
  EXPECT_TRUE(table.insert(flow, 9).inserted);  // re-learn
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(flow)->value, 9u);
}

TEST(DigestCuckooTable, UpdateValue) {
  DigestCuckooTable table(small_config());
  const auto flow = make_flow(2);
  table.insert(flow, 1);
  EXPECT_TRUE(table.update_value(flow, 3));
  EXPECT_EQ(table.lookup(flow)->value, 3u);
  EXPECT_FALSE(table.update_value(make_flow(3), 1));
}

TEST(DigestCuckooTable, EntryBitsAndSram) {
  DigestCuckooTable table(small_config());
  EXPECT_EQ(table.entry_bits(), 28u);  // 16 digest + 6 value + 6 overhead
  EXPECT_EQ(table.capacity(), 4u * 64 * 4);
  // 4 stages x 64 words x 112 bits.
  EXPECT_EQ(table.sram_bytes(), (4u * 64 * 112 + 7) / 8);
}

TEST(DigestCuckooTable, FillsWellPastSingleStage) {
  DigestCuckooTable table(small_config());
  const std::size_t capacity = table.capacity();
  std::size_t inserted = 0;
  for (std::uint32_t i = 0; i < capacity; ++i) {
    if (table.insert(make_flow(i), i & 63).inserted) ++inserted;
  }
  // BFS cuckoo should pack a 4-way, 4-stage table beyond 95%.
  EXPECT_GT(static_cast<double>(inserted), 0.95 * static_cast<double>(capacity));
  EXPECT_EQ(table.size(), inserted);
  EXPECT_GT(table.total_moves(), 0u);  // displacement definitely happened
}

TEST(DigestCuckooTable, AllInsertedRemainFindable) {
  DigestCuckooTable table(small_config());
  std::vector<net::FiveTuple> flows;
  for (std::uint32_t i = 0; i < 800; ++i) {
    const auto flow = make_flow(i);
    if (table.insert(flow, i % 64).inserted) flows.push_back(flow);
  }
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto hit = table.lookup(flows[i]);
    ASSERT_TRUE(hit.has_value()) << "flow " << i << " lost after moves";
  }
}

TEST(DigestCuckooTable, InsertFailsWhenFull) {
  CuckooConfig config = small_config();
  config.stages = 2;
  config.buckets_per_stage = 2;
  config.ways = 1;
  DigestCuckooTable table(config);  // capacity 4
  std::size_t inserted = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    if (table.insert(make_flow(i), 0).inserted) ++inserted;
  }
  EXPECT_LE(inserted, 4u);
  EXPECT_GT(table.failed_inserts(), 0u);
}

TEST(DigestCuckooTable, FalsePositiveDetectionAndRelocation) {
  // 1-bit digests make collisions near-certain.
  CuckooConfig config = small_config();
  config.digest_bits = 1;
  config.buckets_per_stage = 4;
  DigestCuckooTable table(config);

  // Insert flows until some *new* flow falsely hits an existing entry.
  std::uint32_t probe = 100000;
  std::optional<net::FiveTuple> colliding;
  for (std::uint32_t i = 0; i < 64; ++i) table.insert(make_flow(i), 1);
  for (; probe < 110000; ++probe) {
    const auto flow = make_flow(probe);
    if (table.contains(flow)) continue;
    const auto hit = table.lookup(flow);
    if (hit && table.is_false_positive(flow, hit->slot)) {
      colliding = flow;
      break;
    }
  }
  ASSERT_TRUE(colliding.has_value()) << "no collision at 1-bit digest?";

  const auto hit = table.lookup(*colliding);
  ASSERT_TRUE(hit.has_value());
  if (table.relocate_for(*colliding, hit->slot)) {
    // After relocation the arriving flow must either miss or hit a slot
    // that is not a false positive against it at that location... the
    // guarantee is bucket separation at the relocated stage:
    const auto again = table.lookup(*colliding);
    if (again) {
      // Any remaining hit must not be the relocated entry's new home
      // conflicting in the same way (possible only via a *different*
      // resident — acceptable); the original conflict must be gone.
      EXPECT_FALSE(again->slot == hit->slot);
    }
  }
}

TEST(DigestCuckooTable, RelocationPreservesResidentEntry) {
  CuckooConfig config = small_config();
  config.digest_bits = 1;
  config.buckets_per_stage = 8;
  DigestCuckooTable table(config);
  for (std::uint32_t i = 0; i < 100; ++i) table.insert(make_flow(i), i % 4);

  for (std::uint32_t probe = 200000; probe < 210000; ++probe) {
    const auto flow = make_flow(probe);
    if (table.contains(flow)) continue;
    const auto hit = table.lookup(flow);
    if (hit && table.is_false_positive(flow, hit->slot)) {
      // Identify the resident via its exact value, then relocate.
      const std::uint32_t resident_value = hit->value;
      if (table.relocate_for(flow, hit->slot)) {
        // The resident is still present somewhere with its value intact:
        // scan all originally inserted flows for consistency.
        for (std::uint32_t i = 0; i < 100; ++i) {
          const auto f = make_flow(i);
          if (table.contains(f)) {
            EXPECT_EQ(table.exact_value(f).value_or(999), i % 4);
          }
        }
        (void)resident_value;
        return;
      }
    }
  }
  GTEST_SKIP() << "no relocatable collision found";
}

class CuckooOccupancy : public ::testing::TestWithParam<unsigned> {};

TEST_P(CuckooOccupancy, HighLoadFactorAcrossDigestWidths) {
  CuckooConfig config = small_config();
  config.digest_bits = GetParam();
  config.buckets_per_stage = 128;
  DigestCuckooTable table(config);
  const std::size_t target = table.capacity() * 9 / 10;  // 90% fill
  std::size_t inserted = 0;
  for (std::uint32_t i = 0; inserted < target && i < table.capacity() * 2;
       ++i) {
    if (table.insert(make_flow(i), 0).inserted) ++inserted;
  }
  EXPECT_GE(inserted, target);
  EXPECT_GE(table.occupancy(), 0.89);
}

INSTANTIATE_TEST_SUITE_P(DigestWidths, CuckooOccupancy,
                         ::testing::Values(8u, 12u, 16u, 24u));

}  // namespace
}  // namespace silkroad::asic
