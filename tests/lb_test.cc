#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "lb/dip_pool.h"
#include "lb/duet.h"
#include "lb/ecmp_lb.h"
#include "lb/maglev.h"
#include "lb/hash_ring.h"
#include "lb/pcc_tracker.h"
#include "lb/scenario.h"
#include "lb/slb.h"

namespace silkroad::lb {
namespace {

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n, int base = 0) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 +
                                       static_cast<std::uint32_t>(base + i)),
                    20});
  }
  return dips;
}

net::FiveTuple make_flow(std::uint32_t client) {
  return net::FiveTuple{{net::IpAddress::v4(0x0B000000 + client), 1234},
                        vip_ep(),
                        net::Protocol::kTcp};
}

net::Packet packet_of(std::uint32_t client, bool syn = false,
                      bool fin = false) {
  net::Packet p;
  p.flow = make_flow(client);
  p.syn = syn;
  p.fin = fin;
  p.size_bytes = 100;
  return p;
}

// --- DipPool ----------------------------------------------------------------

TEST(DipPool, SelectsDeterministically) {
  DipPool pool(make_dips(8), PoolSemantics::kStableResilient);
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto a = pool.select(make_flow(i));
    const auto b = pool.select(make_flow(i));
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, *b);
  }
}

TEST(DipPool, SpreadsLoad) {
  DipPool pool(make_dips(8), PoolSemantics::kStableResilient);
  std::map<std::string, int> counts;
  for (std::uint32_t i = 0; i < 8000; ++i) {
    ++counts[pool.select(make_flow(i))->to_string()];
  }
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [dip, count] : counts) {
    EXPECT_NEAR(count, 1000, 250) << dip;
  }
}

TEST(DipPool, CompactRemovalRemapsManyFlows) {
  DipPool pool(make_dips(8), PoolSemantics::kCompactEcmp);
  DipPool before = pool;
  pool.remove(make_dips(8)[3]);
  EXPECT_EQ(pool.slot_count(), 7u);
  int moved = 0;
  for (std::uint32_t i = 0; i < 4000; ++i) {
    if (*before.select(make_flow(i)) != *pool.select(make_flow(i))) ++moved;
  }
  // hash % size changes for ~ (1 - 1/8) of flows minus coincidences; at the
  // very least far more than the 1/8 that targeted the removed DIP.
  EXPECT_GT(moved, 1500);
}

TEST(DipPool, ResilientRemovalOnlyRemapsVictims) {
  DipPool pool(make_dips(8), PoolSemantics::kStableResilient);
  DipPool before = pool;
  const auto victim = make_dips(8)[3];
  pool.remove(victim);
  EXPECT_EQ(pool.slot_count(), 8u);  // slot stays, marked dead
  EXPECT_EQ(pool.live_count(), 7u);
  int moved = 0;
  for (std::uint32_t i = 0; i < 4000; ++i) {
    const auto old_dip = *before.select(make_flow(i));
    const auto new_dip = *pool.select(make_flow(i));
    if (old_dip != new_dip) {
      ++moved;
      EXPECT_EQ(old_dip, victim);  // only the victim's flows move
    }
  }
  EXPECT_NEAR(moved, 500, 200);
}

TEST(DipPool, ReplaceDeadSlotPreservesLiveMappings) {
  DipPool pool(make_dips(8), PoolSemantics::kStableResilient);
  const auto victim = make_dips(8)[5];
  pool.remove(victim);
  DipPool before_replace = pool;
  const net::Endpoint fresh{net::IpAddress::v4(0x0A0000FF), 20};
  const auto slot = pool.replace_dead_slot(fresh);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, 5u);
  EXPECT_TRUE(pool.contains_live(fresh));
  for (std::uint32_t i = 0; i < 4000; ++i) {
    const auto old_dip = *before_replace.select(make_flow(i));
    const auto new_dip = *pool.select(make_flow(i));
    // Flows that were diverted off the dead slot may return to it (they were
    // broken); everyone else must be untouched.
    if (old_dip != new_dip) {
      EXPECT_EQ(new_dip, fresh);
    }
  }
}

TEST(DipPool, EmptyAndAllDead) {
  DipPool empty;
  EXPECT_FALSE(empty.select(make_flow(1)).has_value());
  DipPool pool(make_dips(2), PoolSemantics::kStableResilient);
  pool.remove(make_dips(2)[0]);
  pool.remove(make_dips(2)[1]);
  EXPECT_FALSE(pool.select(make_flow(1)).has_value());
  EXPECT_TRUE(pool.has_dead_slot());
  EXPECT_EQ(pool.live_count(), 0u);
}

// --- Maglev -----------------------------------------------------------------

TEST(Maglev, FillsTableCompletely) {
  MaglevTable table(make_dips(10), 251);
  const auto shares = table.slot_shares();
  double total = 0;
  for (const double s : shares) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Maglev, NearPerfectBalance) {
  MaglevTable table(make_dips(10), 65537);
  const auto shares = table.slot_shares();
  const auto [mn, mx] = std::minmax_element(shares.begin(), shares.end());
  // Maglev paper: max/min approaches 1 for M >> N.
  EXPECT_LT(*mx / *mn, 1.05);
}

TEST(Maglev, MinimalDisruptionOnBackendRemoval) {
  auto dips = make_dips(10);
  MaglevTable before(dips, 65537);
  dips.erase(dips.begin() + 4);
  MaglevTable after(dips, 65537);
  // ~1/10 of slots belonged to the removed backend; disruption should be
  // close to that, far below full rehash.
  EXPECT_LT(before.disruption_vs(after), 0.25);
  EXPECT_GT(before.disruption_vs(after), 0.05);
}

TEST(Maglev, SelectConsistent) {
  MaglevTable table(make_dips(5), 251);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(*table.select(make_flow(i)), *table.select(make_flow(i)));
  }
  MaglevTable empty;
  EXPECT_FALSE(empty.select(make_flow(1)).has_value());
}

// --- HashRing -----------------------------------------------------------------

TEST(HashRing, SelectsConsistently) {
  HashRing ring;
  for (const auto& d : make_dips(8)) ring.add(d);
  EXPECT_EQ(ring.backends(), 8u);
  for (std::uint32_t i = 0; i < 200; ++i) {
    EXPECT_EQ(*ring.select(make_flow(i)), *ring.select(make_flow(i)));
  }
}

TEST(HashRing, EmptyRingSelectsNothing) {
  HashRing ring;
  EXPECT_FALSE(ring.select(make_flow(1)).has_value());
  EXPECT_FALSE(ring.remove(make_dips(1)[0]));
}

TEST(HashRing, RemovalOnlyRemapsVictimFlows) {
  HashRing before;
  for (const auto& d : make_dips(16)) before.add(d);
  HashRing after = before;
  const auto victim = make_dips(16)[7];
  EXPECT_TRUE(after.remove(victim));
  int moved = 0;
  for (std::uint32_t i = 0; i < 8000; ++i) {
    const auto a = *before.select(make_flow(i));
    const auto b = *after.select(make_flow(i));
    if (!(a == b)) {
      ++moved;
      EXPECT_EQ(a, victim);  // only arcs owned by the victim move
    }
  }
  EXPECT_NEAR(moved, 500, 250);  // ~1/16 of flows
}

TEST(HashRing, AdditionStealsOnlyFromSuccessors) {
  HashRing before;
  for (const auto& d : make_dips(16)) before.add(d);
  HashRing after = before;
  const net::Endpoint fresh{net::IpAddress::v4(0x0A0000EE), 20};
  after.add(fresh);
  for (std::uint32_t i = 0; i < 8000; ++i) {
    const auto a = *before.select(make_flow(i));
    const auto b = *after.select(make_flow(i));
    if (!(a == b)) {
      EXPECT_EQ(b, fresh);  // moved flows go to the newcomer
    }
  }
}

TEST(HashRing, VnodesBalanceOwnership) {
  HashRing ring(/*vnodes=*/160);
  for (const auto& d : make_dips(10)) ring.add(d);
  const auto shares = ring.ownership(40000);
  ASSERT_EQ(shares.size(), 10u);
  for (const auto& [backend, share] : shares) {
    EXPECT_NEAR(share, 0.1, 0.04) << backend.to_string();
  }
}

// --- PccTracker --------------------------------------------------------------

TEST(PccTracker, CountsViolationOncePerFlow) {
  PccTracker tracker;
  const auto dips = make_dips(3);
  tracker.flow_started(make_flow(1), dips[0], 0);
  tracker.observe(make_flow(1), dips[0], 1);
  EXPECT_EQ(tracker.violations(), 0u);
  tracker.observe(make_flow(1), dips[1], 2);
  tracker.observe(make_flow(1), dips[2], 3);
  EXPECT_EQ(tracker.violations(), 1u);
  EXPECT_EQ(tracker.flows_seen(), 1u);
  EXPECT_DOUBLE_EQ(tracker.violation_fraction(), 1.0);
  tracker.flow_finished(make_flow(1));
  EXPECT_EQ(tracker.active_flows(), 0u);
}

TEST(PccTracker, UnmappedCountsAsViolation) {
  PccTracker tracker;
  tracker.flow_started(make_flow(1), make_dips(1)[0], 0);
  tracker.observe_unmapped(make_flow(1), 5);
  EXPECT_EQ(tracker.violations(), 1u);
  EXPECT_EQ(tracker.violation_times().size(), 1u);
  EXPECT_EQ(tracker.violation_times()[0], 5u);
}

TEST(PccTracker, IgnoresUnknownFlows) {
  PccTracker tracker;
  tracker.observe(make_flow(9), make_dips(1)[0], 1);
  EXPECT_EQ(tracker.violations(), 0u);
}

// --- SLB ---------------------------------------------------------------------

TEST(Slb, PinsFlowsAcrossUpdates) {
  SoftwareLoadBalancer slb;
  slb.add_vip(vip_ep(), make_dips(8));
  std::map<std::uint32_t, net::Endpoint> first;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const auto r = slb.process_packet(packet_of(i, true));
    ASSERT_TRUE(r.dip.has_value());
    EXPECT_TRUE(r.handled_by_slb);
    first.emplace(i, *r.dip);
  }
  // Remove and add DIPs; every pinned flow must keep its mapping.
  slb.request_update({0, vip_ep(), make_dips(8)[2],
                      workload::UpdateAction::kRemoveDip,
                      workload::UpdateCause::kFailure});
  slb.request_update({0, vip_ep(), {net::IpAddress::v4(0x0A0000AA), 20},
                      workload::UpdateAction::kAddDip,
                      workload::UpdateCause::kProvisioning});
  for (std::uint32_t i = 0; i < 200; ++i) {
    EXPECT_EQ(*slb.process_packet(packet_of(i)).dip, first.at(i));
  }
  EXPECT_EQ(slb.conn_table_size(), 200u);
}

TEST(Slb, AddsSoftwareLatencyPerPacket) {
  SoftwareLoadBalancer slb;
  slb.add_vip(vip_ep(), make_dips(4));
  std::vector<double> us;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const auto r = slb.process_packet(packet_of(i, true));
    us.push_back(static_cast<double>(r.added_latency) / sim::kMicrosecond);
  }
  std::sort(us.begin(), us.end());
  // §2.2 envelope: 50 µs - 1 ms of batched software processing.
  EXPECT_GT(us[us.size() / 2], 20.0);
  EXPECT_LT(us[us.size() / 2], 500.0);
  EXPECT_GT(us[static_cast<std::size_t>(us.size() * 0.99)], 200.0);
}

TEST(DuetLatency, SwitchPathFastSlbPathSlow) {
  sim::Simulator sim;
  DuetLoadBalancer duet(sim, {.policy = DuetLoadBalancer::MigratePolicy::kPeriodic,
                              .migrate_period = 10 * sim::kMinute});
  duet.add_vip(vip_ep(), make_dips(8));
  const auto fast = duet.process_packet(packet_of(1, true));
  EXPECT_LT(fast.added_latency, sim::kMicrosecond);
  duet.request_update({0, vip_ep(), make_dips(8)[0],
                       workload::UpdateAction::kRemoveDip,
                       workload::UpdateCause::kFailure});
  const auto slow = duet.process_packet(packet_of(2, true));
  EXPECT_TRUE(slow.handled_by_slb);
  EXPECT_GT(slow.added_latency, 10 * sim::kMicrosecond);
}

TEST(Slb, FinRemovesConnEntry) {
  SoftwareLoadBalancer slb;
  slb.add_vip(vip_ep(), make_dips(4));
  slb.process_packet(packet_of(1, true));
  EXPECT_EQ(slb.conn_table_size(), 1u);
  slb.process_packet(packet_of(1, false, true));
  EXPECT_EQ(slb.conn_table_size(), 0u);
}

TEST(Slb, UnknownVipUnmapped) {
  SoftwareLoadBalancer slb;
  EXPECT_FALSE(slb.process_packet(packet_of(1, true)).dip.has_value());
}

// --- ECMP ---------------------------------------------------------------------

TEST(Ecmp, StatelessAndBreaksOnCompactRemoval) {
  EcmpLoadBalancer ecmp(PoolSemantics::kCompactEcmp);
  ecmp.add_vip(vip_ep(), make_dips(8));
  std::map<std::uint32_t, net::Endpoint> first;
  for (std::uint32_t i = 0; i < 500; ++i) {
    first.emplace(i, *ecmp.process_packet(packet_of(i, true)).dip);
  }
  ecmp.request_update({0, vip_ep(), make_dips(8)[0],
                       workload::UpdateAction::kRemoveDip,
                       workload::UpdateCause::kFailure});
  int moved = 0;
  for (std::uint32_t i = 0; i < 500; ++i) {
    if (*ecmp.process_packet(packet_of(i)).dip != first.at(i)) ++moved;
  }
  EXPECT_GT(moved, 100);  // massive re-mapping: the PCC problem
}

// --- Duet ------------------------------------------------------------------------

class DuetTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
};

TEST_F(DuetTest, RedirectsToSlbOnUpdateAndBack) {
  DuetLoadBalancer duet(sim, {.policy = DuetLoadBalancer::MigratePolicy::kPeriodic,
                              .migrate_period = sim::kMinute});
  duet.add_vip(vip_ep(), make_dips(8));
  EXPECT_FALSE(duet.vip_at_slb(vip_ep()));
  EXPECT_FALSE(duet.process_packet(packet_of(1, true)).handled_by_slb);

  duet.request_update({0, vip_ep(), make_dips(8)[1],
                       workload::UpdateAction::kRemoveDip,
                       workload::UpdateCause::kServiceUpgrade});
  EXPECT_TRUE(duet.vip_at_slb(vip_ep()));
  EXPECT_TRUE(duet.process_packet(packet_of(2, true)).handled_by_slb);
  EXPECT_EQ(duet.migrations_to_slb(), 1u);

  sim.run();  // the 1-minute tick fires
  EXPECT_FALSE(duet.vip_at_slb(vip_ep()));
  EXPECT_EQ(duet.migrations_to_switch(), 1u);
}

TEST_F(DuetTest, PinnedFlowsSurviveUpdateWhileAtSlb) {
  DuetLoadBalancer duet(sim, {.policy = DuetLoadBalancer::MigratePolicy::kPeriodic,
                              .migrate_period = 10 * sim::kMinute});
  duet.add_vip(vip_ep(), make_dips(8));
  // Move to SLB with a first (harmless) update, pin flows, then remove.
  duet.request_update({0, vip_ep(), {net::IpAddress::v4(0x0A0000BB), 20},
                       workload::UpdateAction::kAddDip,
                       workload::UpdateCause::kProvisioning});
  std::map<std::uint32_t, net::Endpoint> pinned;
  for (std::uint32_t i = 0; i < 300; ++i) {
    pinned.emplace(i, *duet.process_packet(packet_of(i, true)).dip);
  }
  duet.request_update({0, vip_ep(), make_dips(8)[0],
                       workload::UpdateAction::kRemoveDip,
                       workload::UpdateCause::kFailure});
  for (std::uint32_t i = 0; i < 300; ++i) {
    EXPECT_EQ(*duet.process_packet(packet_of(i)).dip, pinned.at(i));
  }
}

TEST_F(DuetTest, WaitPccMigratesOnlyWhenSafe) {
  DuetLoadBalancer duet(sim, {.policy = DuetLoadBalancer::MigratePolicy::kWaitPcc});
  duet.add_vip(vip_ep(), make_dips(8));
  // Drive live flows the way the scenario driver does: every mapping-risk
  // event replays a packet per active flow, pinning them at redirect time.
  std::set<std::uint32_t> live;
  duet.set_mapping_risk_callback([&](const net::Endpoint&) {
    for (const std::uint32_t client : live) {
      duet.process_packet(packet_of(client));
    }
  });
  for (std::uint32_t i = 0; i < 50; ++i) {
    live.insert(i);
    duet.process_packet(packet_of(i, true));
  }
  // Removing a member of a compact pool re-maps many flows: their pins now
  // disagree, so the VIP must stay at the SLB.
  duet.request_update({0, vip_ep(), make_dips(8)[2],
                       workload::UpdateAction::kRemoveDip,
                       workload::UpdateCause::kServiceUpgrade});
  EXPECT_TRUE(duet.vip_at_slb(vip_ep()));
  // Finish all flows: migration must then happen.
  for (std::uint32_t i = 0; i < 50; ++i) {
    live.erase(i);
    duet.process_packet(packet_of(i, false, true));
  }
  EXPECT_FALSE(duet.vip_at_slb(vip_ep()));
  EXPECT_GE(duet.migrations_to_switch(), 1u);
}

// --- Scenario integration ---------------------------------------------------------

TEST(Scenario, SlbNeverViolatesPcc) {
  sim::Simulator sim;
  SoftwareLoadBalancer slb;
  ScenarioConfig config;
  config.horizon = 2 * sim::kMinute;
  config.vip_loads = {{vip_ep(), 600.0, workload::FlowProfile::hadoop(), false}};
  config.dip_pools = {make_dips(8)};
  workload::UpdateGenerator gen({.seed = 5}, vip_ep(), make_dips(8));
  config.updates = gen.generate(20.0, config.horizon);
  Scenario scenario(sim, slb, config);
  const auto stats = scenario.run();
  EXPECT_GT(stats.flows, 500u);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_DOUBLE_EQ(stats.slb_traffic_fraction, 1.0);
  EXPECT_GT(stats.updates_applied, 0u);
}

TEST(Scenario, ReplayFlowsDriveTheRunVerbatim) {
  sim::Simulator sim;
  SoftwareLoadBalancer slb;
  ScenarioConfig config;
  config.horizon = sim::kMinute;
  config.vip_loads = {{vip_ep(), 0.0, workload::FlowProfile::hadoop(), false}};
  config.dip_pools = {make_dips(4)};
  for (std::uint32_t i = 0; i < 50; ++i) {
    workload::Flow flow;
    flow.tuple = make_flow(i);
    flow.start = static_cast<sim::Time>(i) * sim::kSecond;
    flow.end = flow.start + 10 * sim::kSecond;
    flow.rate_bps = 1e6;
    config.replay_flows.push_back(flow);
  }
  Scenario scenario(sim, slb, config);
  const auto stats = scenario.run();
  EXPECT_EQ(stats.flows, 50u);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_GT(stats.total_bytes, 0.0);
}

TEST(Scenario, EcmpViolatesUnderUpdates) {
  sim::Simulator sim;
  EcmpLoadBalancer ecmp;
  ScenarioConfig config;
  config.horizon = 2 * sim::kMinute;
  config.vip_loads = {{vip_ep(), 1200.0, workload::FlowProfile::hadoop(), false}};
  config.dip_pools = {make_dips(8)};
  workload::UpdateGenerator gen({.seed = 6}, vip_ep(), make_dips(8));
  config.updates = gen.generate(20.0, config.horizon);
  Scenario scenario(sim, ecmp, config);
  const auto stats = scenario.run();
  EXPECT_GT(stats.violations, 0u);
  EXPECT_DOUBLE_EQ(stats.slb_traffic_fraction, 0.0);
}

TEST(Scenario, DuetPeriodicViolatesButLessTrafficAtSlbThanWaitPcc) {
  const auto run_policy = [&](DuetLoadBalancer::Config cfg) {
    sim::Simulator sim;
    DuetLoadBalancer duet(sim, cfg);
    ScenarioConfig config;
    config.horizon = 5 * sim::kMinute;
    config.seed = 11;
    config.vip_loads = {
        {vip_ep(), 2000.0, workload::FlowProfile::hadoop(), false}};
    config.dip_pools = {make_dips(16)};
    workload::UpdateGenerator gen({.seed = 12}, vip_ep(), make_dips(16));
    config.updates = gen.generate(10.0, config.horizon);
    Scenario scenario(sim, duet, config);
    return scenario.run();
  };
  const auto periodic =
      run_policy({.policy = DuetLoadBalancer::MigratePolicy::kPeriodic,
                  .migrate_period = sim::kMinute});
  const auto wait_pcc =
      run_policy({.policy = DuetLoadBalancer::MigratePolicy::kWaitPcc});
  EXPECT_GT(periodic.violations, 0u);       // Fig. 5b
  EXPECT_EQ(wait_pcc.violations, 0u);       // Migrate-PCC never breaks flows
  EXPECT_GT(wait_pcc.slb_traffic_fraction,  // Fig. 5a
            periodic.slb_traffic_fraction * 0.9);
}

}  // namespace
}  // namespace silkroad::lb
