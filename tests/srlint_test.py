#!/usr/bin/env python3
"""srlint engine test (DESIGN.md §13).

Two halves:

1. Fixtures: runs srlint over tests/srlint_fixtures/ (a miniature repo tree)
   and compares the reported (file, line, rule) triples — exact line
   numbers — against the `// srlint-expect: RN` markers embedded in the
   fixture files. Every rule R1–R14 and the S1/S2 suppression diagnostics
   have positive cases; negative cases (tokens in strings/comments/raw
   strings, scope carve-outs, member calls) must stay silent.

2. Real tree: the repository itself must lint clean — this is the same
   invocation the `lint` ctest and CI run.

3. Mutation: a fresh ad-hoc digest fold injected into a synthetic tree must
   be caught by R14 (the fixtures alone could pass with a rule that merely
   memorizes their lines), and the identical code at the VipDigest carve-out
   path must stay silent.

Registered as the `srlint_test` ctest.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "srlint_fixtures"
SRLINT = REPO_ROOT / "tools" / "srlint"
CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}
EXPECT = re.compile(r"srlint-expect:\s*([A-Z0-9, ]+)")


def expected_from_markers() -> Counter:
    expected: Counter = Counter()
    for path in sorted(FIXTURES.rglob("*")):
        if path.suffix not in CXX_SUFFIXES or not path.is_file():
            continue
        rel = path.relative_to(FIXTURES).as_posix()
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            m = EXPECT.search(line)
            if not m:
                continue
            for rule in re.split(r"[,\s]+", m.group(1).strip()):
                if rule:
                    expected[(rel, lineno, rule)] += 1
    return expected


def run_srlint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SRLINT), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


def check_fixtures() -> list[str]:
    errors: list[str] = []
    proc = run_srlint("--root", str(FIXTURES), "--format", "json")
    if proc.returncode != 1:
        errors.append(
            f"fixture run: expected exit 1 (violations present), got "
            f"{proc.returncode}\nstdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
        return errors
    data = json.loads(proc.stdout)
    actual: Counter = Counter(
        (v["file"], v["line"], v["rule"]) for v in data["violations"]
    )
    expected = expected_from_markers()
    for key in sorted(expected.keys() - actual.keys()):
        errors.append(f"expected but not reported: {key}")
    for key in sorted(actual.keys() - expected.keys()):
        errors.append(f"reported but not expected: {key}")
    for key in sorted(expected.keys() & actual.keys()):
        if expected[key] != actual[key]:
            errors.append(
                f"count mismatch at {key}: expected {expected[key]}, "
                f"reported {actual[key]}"
            )
    if not expected:
        errors.append("no srlint-expect markers found — fixture tree broken")
    # Every rule must have at least one positive fixture.
    covered = {rule for (_, _, rule) in expected}
    for rule in [f"R{n}" for n in range(1, 15)] + ["S1", "S2"]:
        if rule not in covered:
            errors.append(f"rule {rule} has no positive fixture")
    return errors


def check_real_tree() -> list[str]:
    proc = run_srlint()
    if proc.returncode != 0:
        return [
            f"real tree must lint clean, exit {proc.returncode}\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
        ]
    return []


def check_list_rules() -> list[str]:
    proc = run_srlint("--list-rules")
    if proc.returncode != 0:
        return [f"--list-rules failed: {proc.stderr}"]
    missing = [
        f"R{n}" for n in range(1, 15) if f"R{n}" not in proc.stdout.split()
    ]
    return [f"--list-rules missing {missing}"] if missing else []


def check_r14_mutation() -> list[str]:
    """R14 must catch a digest fold it has never seen, and the carve-out for
    the sanctioned implementation must be path-exact, not name-based."""
    snippet = (
        "#include <cstdint>\n"
        "std::uint64_t fold(std::uint64_t d, std::uint64_t x) {\n"
        "  d ^= silkroad::net::mix64(x);\n"
        "  return d;\n"
        "}\n"
    )
    errors: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        mutant = root / "src" / "deploy" / "mutant.cc"
        carved = root / "src" / "obs" / "convergence.cc"
        for path in (mutant, carved):
            path.parent.mkdir(parents=True)
            path.write_text(snippet, encoding="utf-8")
        proc = run_srlint("--root", str(root), "--format", "json")
        if proc.returncode != 1:
            return [
                f"mutation run: expected exit 1, got {proc.returncode}\n"
                f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
            ]
        reported = {
            (v["file"], v["line"], v["rule"])
            for v in json.loads(proc.stdout)["violations"]
        }
        if ("src/deploy/mutant.cc", 3, "R14") not in reported:
            errors.append(
                f"mutated digest fold not caught by R14: {sorted(reported)}"
            )
        carved_hits = [r for r in reported if r[0] == "src/obs/convergence.cc"]
        if carved_hits:
            errors.append(
                f"carve-out file reported violations: {sorted(carved_hits)}"
            )
    return errors


def main() -> int:
    errors = (
        check_fixtures()
        + check_real_tree()
        + check_list_rules()
        + check_r14_mutation()
    )
    if errors:
        print(f"srlint_test: {len(errors)} failure(s)")
        for e in errors:
            print(f"  {e}")
        return 1
    print("srlint_test: fixtures match, real tree clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
