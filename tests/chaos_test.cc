// Seeded chaos harness (ISSUE: robustness; DESIGN.md §11).
//
// Every seed builds a 3-switch fleet behind lossy, reordering control
// channels, generates a randomized FaultPlan covering every fault kind
// (CPU stall/slowdown, learning-notification loss, cuckoo-insert failures,
// control-channel loss, DIP flapping, a full switch crash/restore), runs a
// two-VIP workload through the lb::Scenario PCC audit, and asserts:
//   * zero PCC violations — version pinning + TransitTable + resync keep
//     every surviving flow consistent; flows whose server died or whose
//     ECMP route moved across a crash are exempted (their blast radius is
//     printed, quantifying the §7 failover cost);
//   * zero invariant-auditor findings (Scenario self_checks continuously);
//   * every replica converged to the controller's membership at quiesce.
//
// Usage: chaos_test [--seed-range=a:b] [--restore-heavy]
//   (default 0:20, end exclusive)
//
// --restore-heavy stresses the incremental-sync ladder (DESIGN.md §16):
// every injected restore is followed by a re-kill while the resync session's
// chunks are still in flight, then a second restore — the catch-up must
// resume from the last checkpointed chunk watermark, not restart from zero.
// In this mode every seed always dumps its span tree and per-switch capacity
// JSON under SILKROAD_TELEMETRY_DIR (CI bundles them into the forensics
// artifact even when the seed passes).
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "core/health_checker.h"
#include "deploy/fleet.h"
#include "fault/fault_injector.h"
#include "lb/scenario.h"
#include "obs/exporters.h"
#include "obs/forensics.h"

namespace silkroad {
namespace {

constexpr std::size_t kSwitches = 3;
constexpr std::size_t kVips = 2;
constexpr std::size_t kDipsPerVip = 8;
constexpr sim::Time kHorizon = 30 * sim::kSecond;

net::Endpoint vip_of(std::size_t v) {
  return {net::IpAddress::v4(0x14000001 + static_cast<std::uint32_t>(v)), 80};
}

std::vector<net::Endpoint> dips_of(std::size_t v) {
  std::vector<net::Endpoint> dips;
  for (std::size_t i = 0; i < kDipsPerVip; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 +
                                       static_cast<std::uint32_t>(
                                           v * 256 + i)),
                    20});
  }
  return dips;
}

core::SilkRoadSwitch::Config chaos_switch_config() {
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(4096);
  config.use_transit_table = true;
  // Version reuse would recycle version numbers while old pins still hold
  // them; the chaos runs keep the full 6-bit space instead.
  config.enable_version_reuse = false;
  config.max_pending_inserts = 512;
  config.degraded_enter_backlog = 256;
  config.degraded_exit_backlog = 32;
  config.shed_policy = core::SilkRoadSwitch::ShedPolicy::kPinVersion;
  config.degraded_poll_period = 1 * sim::kMillisecond;
  config.relearn_timeout = 20 * sim::kMillisecond;
  return config;
}

fault::ControlChannel::Config chaos_channel_config(std::uint64_t seed) {
  fault::ControlChannel::Config channel;
  channel.base_delay = 200 * sim::kMicrosecond;
  channel.jitter = 100 * sim::kMicrosecond;
  channel.drop_probability = 0.05;
  channel.reorder_probability = 0.05;
  channel.reorder_extra = 300 * sim::kMicrosecond;
  channel.retry_timeout = 1 * sim::kMillisecond;
  channel.retry_backoff = 2.0;
  channel.resync_after_retries = 5;
  channel.seed = 0xC0117301ULL ^ seed;
  return channel;
}

sim::Simulator* g_sim = nullptr;
deploy::SilkRoadFleet* g_fleet = nullptr;

extern "C" void chaos_alarm(int) {
  if (g_sim != nullptr) {
    std::fprintf(stderr, "WEDGED at t=%.6fs pending=%zu executed=%llu\n",
                 sim::to_seconds(g_sim->now()), g_sim->pending_events(),
                 static_cast<unsigned long long>(g_sim->executed_events()));
    if (g_fleet != nullptr) {
      for (std::size_t i = 0; i < g_fleet->size(); ++i) {
        const auto& sw = g_fleet->switch_at(i);
        std::fprintf(stderr,
                     "  sw%zu pending=%zu degraded=%d in_flight=%d queued=%zu "
                     "software=%zu\n",
                     i, sw.pending_insertions(), sw.in_degraded_mode() ? 1 : 0,
                     sw.update_in_flight() ? 1 : 0, sw.queued_updates(),
                     sw.software_flows());
      }
    }
  }
  _exit(3);
}

bool run_seed(std::uint64_t seed, bool restore_heavy) {
  sim::Simulator sim;
  deploy::SilkRoadFleet fleet(sim, chaos_switch_config(), kSwitches,
                              0xFEE7ULL + seed, chaos_channel_config(seed));

  obs::MetricsRegistry fault_registry;
  fault::FaultPlan plan = fault::FaultPlan::random(
      seed, {.horizon = kHorizon,
             .switches = kSwitches,
             .dips = kVips * kDipsPerVip,
             .include_crash = true});
  fault::FaultInjector injector(sim, plan, seed ^ 0x5EEDULL, &fault_registry);
  for (std::size_t i = 0; i < kSwitches; ++i) {
    fleet.switch_at(i).set_fault_hooks({injector.cpu_delay_hook(i),
                                        injector.learn_drop_hook(i),
                                        injector.insert_fail_hook(i)});
    fleet.set_channel_loss_hook(i, injector.channel_loss_hook(i));
  }

  // Workload: two VIPs of short-lived flows, plus a scheduled maintenance
  // cycle per VIP so planned 3-step updates overlap the injected faults.
  lb::ScenarioConfig scenario_config;
  scenario_config.horizon = kHorizon;
  scenario_config.seed = 0xC4405ULL ^ seed;
  std::unordered_map<net::Endpoint, std::size_t, net::EndpointHash> dip_index;
  for (std::size_t v = 0; v < kVips; ++v) {
    workload::FlowGenerator::VipLoad load;
    load.vip = vip_of(v);
    load.arrivals_per_min = 4800;  // 80 flows/s
    load.profile = {"chaos", 2.0, 10.0, 1e6, 5e6};
    scenario_config.vip_loads.push_back(load);
    scenario_config.dip_pools.push_back(dips_of(v));
    for (std::size_t i = 0; i < kDipsPerVip; ++i) {
      dip_index[dips_of(v)[i]] = v * kDipsPerVip + i;
    }
    const sim::Time base = (3 + 6 * v) * sim::kSecond;
    const auto dip = dips_of(v)[7];
    scenario_config.updates.push_back({base, vip_of(v), dip,
                                       workload::UpdateAction::kRemoveDip,
                                       workload::UpdateCause::kServiceUpgrade});
    scenario_config.updates.push_back({base + 3 * sim::kSecond, vip_of(v), dip,
                                       workload::UpdateAction::kAddDip,
                                       workload::UpdateCause::kServiceUpgrade});
  }
  lb::Scenario scenario(sim, fleet, scenario_config);

  core::HealthChecker checker(
      sim, fleet,
      {.probe_interval = 500 * sim::kMillisecond,
       .failure_threshold = 2,
       .resilient_in_place = false,
       .recovery_threshold = 2,
       .flap_penalty = 2.0,
       .flap_suppress_threshold = 4.0,
       .flap_decay = 1.0},
      [&](const net::Endpoint& dip) {
        return injector.dip_alive(dip_index.at(dip), sim.now());
      });
  // The checker announces transitions *before* mutating the balancer: mark
  // the server dead (and its flows exempt) while the old mapping still holds.
  checker.set_failure_callback(
      [&](const net::Endpoint&, const net::Endpoint& dip) {
        scenario.note_dip_down(dip);
        scenario.exempt_flows_on_dip(dip);
      });
  checker.set_recovery_callback(
      [&](const net::Endpoint&, const net::Endpoint& dip) {
        scenario.note_dip_up(dip);
      });
  for (std::size_t v = 0; v < kVips; ++v) {
    for (const auto& dip : dips_of(v)) checker.watch(vip_of(v), dip);
  }

  // Crash blast radius: flows routed to the dying switch re-hash onto peers
  // that cannot reproduce software/degraded pins or old-version mappings.
  // They are exempt from the PCC audit and reported as the failover cost.
  std::uint64_t crash_exempted = 0;
  std::uint64_t crash_pinned = 0;
  const auto kill_switch = [&](std::size_t index) {
    crash_pinned += fleet.switch_at(index).failover_blast_radius().size();
    for (const auto& flow : scenario.active_flows()) {
      if (const auto route = fleet.route_of(flow); route && *route == index) {
        scenario.exempt_flow(flow);
        ++crash_exempted;
      }
    }
    fleet.fail_switch(index);
  };
  // Restore-heavy: re-kill shortly after each injected restore — usually
  // while the resync session's chunks are still in the air — then restore
  // again. kill_switch handles both outcomes of the race: a still-restoring
  // switch carries no ECMP flows (nothing to exempt), a just-rejoined one is
  // exempted exactly like a first crash. Bounded so late-horizon restores
  // cannot cascade past quiesce.
  std::uint64_t rekills = 0;
  injector.schedule_crashes(kill_switch, [&](std::size_t index) {
    fleet.restore_switch(index);
    if (!restore_heavy || rekills >= 3) return;
    ++rekills;
    sim.schedule_after(300 * sim::kMicrosecond,
                       [&kill_switch, index] { kill_switch(index); });
    sim.schedule_after(2500 * sim::kMicrosecond,
                       [&fleet, index] { fleet.restore_switch(index); });
  });
  fleet.set_membership_callback([&](std::size_t index, bool alive) {
    if (!alive) return;  // fail-time exemptions happen in the crash hook
    // A restored switch pulls its ECMP share back; those flows' state lives
    // on the survivors, so their next packet is a fresh admission.
    for (const auto& flow : scenario.active_flows()) {
      if (const auto route = fleet.route_of(flow); route && *route == index) {
        scenario.exempt_flow(flow);
        ++crash_exempted;
      }
    }
  });

  // All fault windows close by 85% of the horizon; two extra probe rounds of
  // slack let declared-dead DIPs recover, then the probe loop winds down so
  // the event queue can drain.
  sim.schedule_at(2 * kHorizon, [&] { checker.stop(); });

  if (std::getenv("CHAOS_HEARTBEAT") != nullptr) {
    std::fprintf(stderr, "%s", plan.to_string().c_str());
    auto beat = std::make_shared<std::function<void()>>();
    *beat = [&sim, &scenario, &fleet, beat] {
      std::fprintf(stderr, "  t=%.2fs active=%zu pending=%zu+%zu+%zu\n",
                   sim::to_seconds(sim.now()), scenario.active_flows().size(),
                   fleet.switch_at(0).pending_insertions(),
                   fleet.switch_at(1).pending_insertions(),
                   fleet.switch_at(2).pending_insertions());
      // Stop beating once the run has drained so the heartbeat itself does
      // not keep the event queue alive past quiesce.
      const bool drained = sim.now() >= 2 * kHorizon &&
                           scenario.active_flows().empty() &&
                           fleet.ctrl_outstanding() == 0;
      if (!drained) sim.schedule_after(sim::kSecond / 20, *beat);
    };
    sim.schedule_after(sim::kSecond / 20, *beat);
  }

  g_sim = &sim;
  g_fleet = &fleet;
  if (std::getenv("CHAOS_HEARTBEAT") != nullptr) {
    std::signal(SIGALRM, chaos_alarm);
    alarm(15);
  }
  const lb::ScenarioStats stats = scenario.run();
  alarm(0);
  g_sim = nullptr;
  g_fleet = nullptr;

  const bool converged = fleet.converged();
  const std::size_t outstanding = fleet.ctrl_outstanding();
  // Quiescence evaluation of the convergence observatory (DESIGN.md §17):
  // recompute lags + SLO and run the digest comparison on every switch.
  obs::FleetObserver& observer = *fleet.observer();
  observer.evaluate(sim.now());
  const auto fleet_snap = fleet.metrics_snapshot();
  std::printf(
      "seed %3llu: flows=%llu violations=%llu faults=%llu "
      "(stall=%llu slow=%llu learn=%llu insert=%llu chan=%llu flap=%llu "
      "crash=%llu) ctrl[retries=%llu resyncs=%llu] "
      "sync[delta=%llu full=%llu empty=%llu chunks=%llu bytes=%llu] "
      "degraded_transitions=%.0f "
      "shed=%.0f relearns=%.0f blast[routed=%llu pinned=%llu] "
      "checker[fail=%llu recover=%llu suppressed=%llu] converged=%d "
      "obs[lag_max=%llu slo_ok=%d burn_ms=%.3f diverged=%llu "
      "selfchecks=%llu]\n",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(stats.flows),
      static_cast<unsigned long long>(stats.violations),
      static_cast<unsigned long long>(injector.injected_total()),
      static_cast<unsigned long long>(
          injector.injected(fault::FaultKind::kCpuStall)),
      static_cast<unsigned long long>(
          injector.injected(fault::FaultKind::kCpuSlowdown)),
      static_cast<unsigned long long>(
          injector.injected(fault::FaultKind::kLearnDrop)),
      static_cast<unsigned long long>(
          injector.injected(fault::FaultKind::kInsertFail)),
      static_cast<unsigned long long>(
          injector.injected(fault::FaultKind::kChannelLoss)),
      static_cast<unsigned long long>(
          injector.injected(fault::FaultKind::kDipFlap)),
      static_cast<unsigned long long>(
          injector.injected(fault::FaultKind::kSwitchCrash)),
      static_cast<unsigned long long>(fleet.ctrl_retries()),
      static_cast<unsigned long long>(fleet.ctrl_resyncs()),
      static_cast<unsigned long long>(fleet.delta_sessions()),
      static_cast<unsigned long long>(fleet.full_sessions()),
      static_cast<unsigned long long>(fleet.empty_sessions()),
      static_cast<unsigned long long>(fleet.ctrl_resync_chunks()),
      static_cast<unsigned long long>(fleet.ctrl_resync_bytes()),
      fleet_snap.value_of("silkroad_degraded_mode_transitions_total"),
      fleet_snap.value_of("silkroad_pending_shed_total"),
      fleet_snap.value_of("silkroad_relearns_total"),
      static_cast<unsigned long long>(crash_exempted),
      static_cast<unsigned long long>(crash_pinned),
      static_cast<unsigned long long>(checker.failures_detected()),
      static_cast<unsigned long long>(checker.recoveries_detected()),
      static_cast<unsigned long long>(checker.recoveries_suppressed()),
      converged ? 1 : 0,
      static_cast<unsigned long long>([&observer] {
        std::uint64_t max_lag = 0;
        for (std::size_t i = 0; i < observer.switches(); ++i) {
          max_lag = std::max(max_lag, observer.lag_positions(i));
        }
        return max_lag;
      }()),
      observer.slo_ok() ? 1 : 0,
      static_cast<double>(observer.slo_burn_ns()) / 1e6,
      static_cast<unsigned long long>(observer.divergences()),
      static_cast<unsigned long long>(observer.selfchecks()));

  bool ok = true;
  if (stats.violations != 0) {
    std::fprintf(stderr, "seed %llu: %llu PCC violations\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(stats.violations));
    ok = false;
  }
  if (!converged) {
    std::fprintf(stderr, "seed %llu: fleet did not converge at quiesce\n",
                 static_cast<unsigned long long>(seed));
    ok = false;
  }
  if (outstanding != 0) {
    std::fprintf(stderr, "seed %llu: %zu control messages still outstanding\n",
                 static_cast<unsigned long long>(seed), outstanding);
    ok = false;
  }
  if (stats.flows == 0) {
    std::fprintf(stderr, "seed %llu: workload generated no flows\n",
                 static_cast<unsigned long long>(seed));
    ok = false;
  }
  // Span-tree completeness: every update intent the controller minted must
  // have run each observed channel/switch leg to a terminal state — finish,
  // skip, abandon, or subsumption by that switch's resync escalation. An
  // orphan step event here means an update_id was lost somewhere in the
  // channel/CPU/protocol machinery.
  const auto span_problems = fleet.spans().audit_complete();
  if (!span_problems.empty()) {
    for (const auto& problem : span_problems) {
      std::fprintf(stderr, "seed %llu: span audit: %s\n",
                   static_cast<unsigned long long>(seed), problem.c_str());
    }
    ok = false;
  }
  if (fleet.spans().total_started() == 0) {
    std::fprintf(stderr, "seed %llu: no update spans were minted\n",
                 static_cast<unsigned long long>(seed));
    ok = false;
  }
  // Convergence observatory (DESIGN.md §17): a quiesced, converged fleet
  // must show zero silent divergences, a met SLO, and incrementally-
  // maintained digests that survive a full recompute.
  if (observer.divergences() != 0) {
    std::fprintf(stderr, "seed %llu: %llu silent divergences detected\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(observer.divergences()));
    ok = false;
  }
  if (!observer.slo_ok()) {
    std::fprintf(stderr, "seed %llu: convergence SLO violated at quiesce\n",
                 static_cast<unsigned long long>(seed));
    ok = false;
  }
  if (!observer.verify_digests()) {
    std::fprintf(stderr, "seed %llu: digest self-check failed\n",
                 static_cast<unsigned long long>(seed));
    ok = false;
  }

  // On failure, leave a durable incident record for the CI artifact upload:
  // the full span set, plus (when a flow actually broke) a forensics report
  // interleaving its journey with the overlapping update spans.
  if (!ok) {
    const std::string dir = obs::telemetry_dir_from_env();
    if (!dir.empty()) {
      char stem[64];
      std::snprintf(stem, sizeof stem, "chaos_seed%llu",
                    static_cast<unsigned long long>(seed));
      obs::write_file(dir + "/" + std::string(stem) + "_spans.json",
                      fleet.spans().to_json());
      obs::write_file(dir + "/" + std::string(stem) + "_fleet.json",
                      observer.to_json());
      // Divergence episodes carry their own ForensicsReports (assembled by
      // the observer's callback with per-VIP attribution attached).
      for (std::size_t i = 0; i < fleet.divergence_reports().size(); ++i) {
        char name[96];
        std::snprintf(name, sizeof name, "%s_divergence%zu", stem, i);
        obs::write_forensics(fleet.divergence_reports()[i], dir, name);
      }
      const auto& records = scenario.tracker().violation_records();
      if (!records.empty()) {
        const auto& record = records.front();
        const auto route = fleet.route_of(record.flow);
        const auto& sw = fleet.switch_at(route.value_or(0));
        auto report = obs::assemble_forensics(
            sw.trace(), &fleet.spans(), net::FiveTupleHash{}(record.flow),
            "chaos PCC violation");
        // Capacity section (DESIGN.md §15): was the offending switch's SRAM
        // under pressure or exhausting when the flow broke?
        report.attach_capacity(sw.capacity().to_text(),
                               sw.capacity().to_json());
        obs::write_forensics(report, dir, std::string(stem) + "_forensics");
        obs::write_file(dir + "/" + std::string(stem) + "_capacity.json",
                        sw.capacity().to_json());
      }
      std::fprintf(stderr, "seed %llu: telemetry written under %s\n",
                   static_cast<unsigned long long>(seed), dir.c_str());
    }
  }

  // Restore-heavy runs always leave their evidence behind, pass or fail: the
  // full span tree (session/chunk spans included) and every switch's live
  // capacity ledger, bundled by CI into the forensics artifact.
  if (restore_heavy) {
    const std::string dir = obs::telemetry_dir_from_env();
    if (!dir.empty()) {
      char stem[64];
      std::snprintf(stem, sizeof stem, "restore_heavy_seed%llu",
                    static_cast<unsigned long long>(seed));
      obs::write_file(dir + "/" + std::string(stem) + "_spans.json",
                      fleet.spans().to_json());
      obs::write_file(dir + "/" + std::string(stem) + "_fleet.json",
                      observer.to_json());
      for (std::size_t i = 0; i < fleet.size(); ++i) {
        obs::write_file(dir + "/" + std::string(stem) + "_sw" +
                            std::to_string(i) + "_capacity.json",
                        fleet.switch_at(i).capacity().to_json());
      }
    }
  }

  // Final structural audit of every live switch (aborts on a finding).
  fleet.self_check();
  return ok;
}

}  // namespace
}  // namespace silkroad

int main(int argc, char** argv) {
  unsigned long long begin = 0;
  unsigned long long end = 20;
  bool restore_heavy = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed-range=", 13) == 0) {
      if (std::sscanf(argv[i] + 13, "%llu:%llu", &begin, &end) != 2 ||
          begin >= end) {
        std::fprintf(stderr, "bad --seed-range, expected a:b with a<b\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--restore-heavy") == 0) {
      restore_heavy = true;
    } else {
      std::fprintf(stderr, "usage: %s [--seed-range=a:b] [--restore-heavy]\n",
                   argv[0]);
      return 2;
    }
  }
  int failed = 0;
  for (unsigned long long seed = begin; seed < end; ++seed) {
    if (!silkroad::run_seed(seed, restore_heavy)) ++failed;
  }
  if (failed != 0) {
    std::fprintf(stderr, "%d/%llu chaos seeds FAILED\n", failed, end - begin);
    return 1;
  }
  std::printf("all %llu chaos seeds passed\n", end - begin);
  return 0;
}
