#include <gtest/gtest.h>

#include "core/hybrid.h"
#include "lb/scenario.h"

namespace silkroad::core {
namespace {

net::Endpoint vip_ep(std::uint32_t n) {
  return {net::IpAddress::v4(0x14000000 + n), 80};
}

std::vector<net::Endpoint> make_dips(int n, int base = 0) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 +
                                       static_cast<std::uint32_t>(base + i)),
                    20});
  }
  return dips;
}

net::Packet packet_for(std::uint32_t client, const net::Endpoint& vip,
                       bool syn = false) {
  net::Packet p;
  p.flow = {{net::IpAddress::v4(0x0B000000 + client), 1234}, vip,
            net::Protocol::kTcp};
  p.syn = syn;
  p.size_bytes = 100;
  return p;
}

HybridLoadBalancer::Config small_config(std::uint64_t budget) {
  HybridLoadBalancer::Config config;
  config.switch_config.conn_table = SilkRoadSwitch::conn_table_for(8192);
  config.switch_connection_budget = budget;
  return config;
}

TEST(Hybrid, AssignsByDeclaredDemandAgainstBudget) {
  sim::Simulator sim;
  HybridLoadBalancer lb(sim, small_config(1'000'000));
  lb.declare_demand(vip_ep(1), 600'000);   // fits
  lb.declare_demand(vip_ep(2), 600'000);   // exceeds the remainder
  lb.add_vip(vip_ep(1), make_dips(4, 0));
  lb.add_vip(vip_ep(2), make_dips(4, 100));
  EXPECT_TRUE(lb.vip_on_switch(vip_ep(1)));
  EXPECT_FALSE(lb.vip_on_switch(vip_ep(2)));
  EXPECT_TRUE(lb.vip_at_slb(vip_ep(2)));
  EXPECT_EQ(lb.remaining_switch_budget(), 400'000u);
}

TEST(Hybrid, PinOverridesDemand) {
  sim::Simulator sim;
  HybridLoadBalancer lb(sim, small_config(100));
  lb.declare_demand(vip_ep(1), 1'000'000);
  lb.pin_tier(vip_ep(1), HybridLoadBalancer::Tier::kSwitch);
  lb.add_vip(vip_ep(1), make_dips(4));
  EXPECT_TRUE(lb.vip_on_switch(vip_ep(1)));
  lb.pin_tier(vip_ep(2), HybridLoadBalancer::Tier::kSlb);
  lb.add_vip(vip_ep(2), make_dips(4, 50));
  EXPECT_FALSE(lb.vip_on_switch(vip_ep(2)));
}

TEST(Hybrid, PacketsRouteToTheRightTier) {
  sim::Simulator sim;
  HybridLoadBalancer lb(sim, small_config(1'000'000));
  lb.declare_demand(vip_ep(2), 2'000'000);  // SLB
  lb.add_vip(vip_ep(1), make_dips(4, 0));
  lb.add_vip(vip_ep(2), make_dips(4, 100));
  const auto fast = lb.process_packet(packet_for(1, vip_ep(1), true));
  EXPECT_FALSE(fast.handled_by_slb);
  EXPECT_LT(fast.added_latency, sim::kMicrosecond);
  const auto slow = lb.process_packet(packet_for(2, vip_ep(2), true));
  EXPECT_TRUE(slow.handled_by_slb);
  EXPECT_GT(slow.added_latency, 10 * sim::kMicrosecond);
}

TEST(Hybrid, BothTiersPreservePccUnderUpdates) {
  sim::Simulator sim;
  HybridLoadBalancer lb(sim, small_config(1'000'000));
  lb.declare_demand(vip_ep(2), 2'000'000);
  lb::ScenarioConfig config;
  config.horizon = 2 * sim::kMinute;
  config.seed = 55;
  config.vip_loads = {
      {vip_ep(1), 800.0, workload::FlowProfile::hadoop(), false},
      {vip_ep(2), 800.0, workload::FlowProfile::hadoop(), false}};
  config.dip_pools = {make_dips(12, 0), make_dips(12, 100)};
  for (std::size_t v = 0; v < 2; ++v) {
    workload::UpdateGenerator gen({.seed = 56 + v},
                                  config.vip_loads[v].vip,
                                  config.dip_pools[v]);
    auto updates = gen.generate(10.0, config.horizon);
    config.updates.insert(config.updates.end(), updates.begin(), updates.end());
  }
  lb::Scenario scenario(sim, lb, config);
  const auto stats = scenario.run();
  EXPECT_GT(stats.flows, 2000u);
  EXPECT_EQ(stats.violations, 0u);
  // Roughly half the traffic (one of two equal VIPs) lands in software.
  EXPECT_NEAR(stats.slb_traffic_fraction, 0.5, 0.25);
}

TEST(Hybrid, UpdatesReachTheOwningTierOnly) {
  sim::Simulator sim;
  HybridLoadBalancer lb(sim, small_config(1'000'000));
  lb.declare_demand(vip_ep(2), 2'000'000);
  const auto dips1 = make_dips(4, 0);
  lb.add_vip(vip_ep(1), dips1);
  lb.add_vip(vip_ep(2), make_dips(4, 100));
  lb.request_update({0, vip_ep(1), dips1[0],
                     workload::UpdateAction::kRemoveDip,
                     workload::UpdateCause::kServiceUpgrade});
  sim.run();
  const auto* mgr = lb.switch_tier().version_manager(vip_ep(1));
  ASSERT_NE(mgr, nullptr);
  EXPECT_FALSE(mgr->pool(mgr->current_version())->contains_live(dips1[0]));
  // New flows on VIP 2 still map via the SLB tier, 4 live DIPs.
  EXPECT_TRUE(lb.process_packet(packet_for(9, vip_ep(2), true)).dip.has_value());
}

}  // namespace
}  // namespace silkroad::core
