#include <gtest/gtest.h>

#include <map>

#include "deploy/fleet.h"

namespace silkroad::deploy {
namespace {

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

net::Packet packet_of(std::uint32_t client, bool syn = false) {
  net::Packet p;
  p.flow = net::FiveTuple{{net::IpAddress::v4(0x0B000000 + client), 1234},
                          vip_ep(),
                          net::Protocol::kTcp};
  p.syn = syn;
  p.size_bytes = 100;
  return p;
}

core::SilkRoadSwitch::Config small_config() {
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(8192);
  return config;
}

TEST(SilkRoadFleet, SpreadsFlowsAcrossMembers) {
  sim::Simulator sim;
  SilkRoadFleet fleet(sim, small_config(), 4);
  fleet.add_vip(vip_ep(), make_dips(8));
  std::map<std::size_t, int> per_switch;
  for (std::uint32_t i = 0; i < 4000; ++i) {
    const auto route = fleet.route_of(packet_of(i).flow);
    ASSERT_TRUE(route.has_value());
    ++per_switch[*route];
  }
  EXPECT_EQ(per_switch.size(), 4u);
  for (const auto& [idx, count] : per_switch) {
    EXPECT_NEAR(count, 1000, 250) << "switch " << idx;
  }
}

TEST(SilkRoadFleet, RoutingIsStableAndStateLandsOnOneSwitch) {
  sim::Simulator sim;
  SilkRoadFleet fleet(sim, small_config(), 4);
  fleet.add_vip(vip_ep(), make_dips(8));
  const auto route_before = fleet.route_of(packet_of(7).flow);
  fleet.process_packet(packet_of(7, true));
  sim.run();
  const auto route_after = fleet.route_of(packet_of(7).flow);
  EXPECT_EQ(*route_before, *route_after);
  EXPECT_EQ(fleet.switch_at(*route_before).conn_table().size(), 1u);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (i != *route_before) {
      EXPECT_EQ(fleet.switch_at(i).conn_table().size(), 0u);
    }
  }
}

TEST(SilkRoadFleet, FailureOnlyRemapsFailedSwitchShare) {
  sim::Simulator sim;
  SilkRoadFleet fleet(sim, small_config(), 4);
  fleet.add_vip(vip_ep(), make_dips(8));
  std::map<std::uint32_t, std::size_t> routes;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    routes[i] = *fleet.route_of(packet_of(i).flow);
  }
  fleet.fail_switch(2);
  EXPECT_EQ(fleet.live_count(), 3u);
  int moved = 0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const auto now = *fleet.route_of(packet_of(i).flow);
    if (now != routes[i]) {
      ++moved;
      EXPECT_EQ(routes[i], 2u);  // rendezvous hashing: only victims move
      EXPECT_NE(now, 2u);
    }
  }
  EXPECT_NEAR(moved, 500, 200);
}

TEST(SilkRoadFleet, UpdatesFanOutToAllMembers) {
  sim::Simulator sim;
  SilkRoadFleet fleet(sim, small_config(), 3);
  const auto dips = make_dips(8);
  fleet.add_vip(vip_ep(), dips);
  fleet.request_update({0, vip_ep(), dips[0],
                        workload::UpdateAction::kRemoveDip,
                        workload::UpdateCause::kServiceUpgrade});
  sim.run();
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto* mgr = fleet.switch_at(i).version_manager(vip_ep());
    ASSERT_NE(mgr, nullptr);
    EXPECT_FALSE(mgr->pool(mgr->current_version())->contains_live(dips[0]));
  }
}

TEST(SilkRoadFleet, FailoverPreservesLatestVersionFlows) {
  // §7: a flow on the latest pool version survives its switch's death —
  // the peer's identical VIPTable maps it to the same DIP.
  sim::Simulator sim;
  SilkRoadFleet fleet(sim, small_config(), 4);
  fleet.add_vip(vip_ep(), make_dips(8));
  std::map<std::uint32_t, net::Endpoint> assigned;
  for (std::uint32_t i = 0; i < 500; ++i) {
    const auto r = fleet.process_packet(packet_of(i, true));
    ASSERT_TRUE(r.dip.has_value());
    assigned.emplace(i, *r.dip);
  }
  sim.run();
  fleet.fail_switch(1);
  int broken = 0;
  for (std::uint32_t i = 0; i < 500; ++i) {
    const auto r = fleet.process_packet(packet_of(i));
    if (!r.dip || !(*r.dip == assigned.at(i))) ++broken;
  }
  // No updates happened, so every flow was on the latest version: zero break.
  EXPECT_EQ(broken, 0);
}

TEST(SilkRoadFleet, FailoverBreaksOnlyStaleVersionFlows) {
  sim::Simulator sim;
  SilkRoadFleet fleet(sim, small_config(), 4);
  const auto dips = make_dips(8);
  fleet.add_vip(vip_ep(), dips);
  // Cohort A starts on version 0.
  std::map<std::uint32_t, net::Endpoint> cohort_a;
  for (std::uint32_t i = 0; i < 400; ++i) {
    cohort_a.emplace(i, *fleet.process_packet(packet_of(i, true)).dip);
  }
  sim.run();
  // Pool update: cohort A is now on a stale version (pinned per switch).
  fleet.request_update({sim.now(), vip_ep(), dips[0],
                        workload::UpdateAction::kRemoveDip,
                        workload::UpdateCause::kServiceUpgrade});
  sim.run();
  fleet.fail_switch(0);
  int broken = 0, total_failed_over = 0;
  for (std::uint32_t i = 0; i < 400; ++i) {
    const auto now_route = fleet.route_of(packet_of(i).flow);
    const auto r = fleet.process_packet(packet_of(i));
    (void)now_route;
    if (!r.dip || !(*r.dip == cohort_a.at(i))) {
      ++broken;
    }
  }
  // Only flows that (a) lived on switch 0 AND (b) would hash differently
  // under the new pool break: roughly 1/4 x 1/8 of the cohort.
  total_failed_over = 400 / 4;
  EXPECT_GT(broken, 0);
  EXPECT_LT(broken, total_failed_over);
}

TEST(SilkRoadFleet, RestoreRejoinsEcmp) {
  sim::Simulator sim;
  SilkRoadFleet fleet(sim, small_config(), 2);
  fleet.add_vip(vip_ep(), make_dips(4));
  fleet.fail_switch(0);
  EXPECT_EQ(fleet.live_count(), 1u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(*fleet.route_of(packet_of(i).flow), 1u);
  }
  fleet.restore_switch(0);
  // The replacement rejoins ECMP only after the controller's resync lands.
  EXPECT_EQ(fleet.live_count(), 1u);
  sim.run();
  EXPECT_EQ(fleet.live_count(), 2u);
  EXPECT_TRUE(fleet.converged());
  bool any_on_zero = false;
  for (std::uint32_t i = 0; i < 100; ++i) {
    any_on_zero |= (*fleet.route_of(packet_of(i).flow) == 0u);
  }
  EXPECT_TRUE(any_on_zero);
}

TEST(SilkRoadFleet, AllDownMeansUnrouted) {
  sim::Simulator sim;
  SilkRoadFleet fleet(sim, small_config(), 2);
  fleet.add_vip(vip_ep(), make_dips(4));
  fleet.fail_switch(0);
  fleet.fail_switch(1);
  EXPECT_FALSE(fleet.route_of(packet_of(1).flow).has_value());
  EXPECT_FALSE(fleet.process_packet(packet_of(1, true)).dip.has_value());
}

}  // namespace
}  // namespace silkroad::deploy
