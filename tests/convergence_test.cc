// Fleet convergence observatory (DESIGN.md §17): VipDigest token algebra,
// watermark-lag SLO hysteresis, checkability around resync sessions, silent
// divergence detection with per-VIP attribution, and the property that the
// incrementally-maintained digests equal a full recompute after randomized
// interleavings of updates, crashes, and restores through a real fleet.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "deploy/fleet.h"
#include "obs/convergence.h"

namespace silkroad::obs {
namespace {

net::Endpoint vip_ep(std::uint32_t n = 1) {
  return {net::IpAddress::v4(0x14000000 + n), 80};
}

net::Endpoint dip_ep(std::uint32_t n) {
  return {net::IpAddress::v4(0x0A000000 + n), 20};
}

std::vector<net::Endpoint> make_dips(std::uint32_t n) {
  std::vector<net::Endpoint> dips;
  for (std::uint32_t i = 0; i < n; ++i) dips.push_back(dip_ep(i));
  return dips;
}

core::SilkRoadSwitch::Config small_config() {
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(8192);
  return config;
}

workload::DipUpdate update_of(const net::Endpoint& vip,
                              const net::Endpoint& dip, bool add) {
  workload::DipUpdate update;
  update.vip = vip;
  update.dip = dip;
  update.action = add ? workload::UpdateAction::kAddDip
                      : workload::UpdateAction::kRemoveDip;
  update.cause = workload::UpdateCause::kServiceUpgrade;
  return update;
}

// --- VipDigest token algebra -------------------------------------------------

TEST(VipDigest, OrderIndependent) {
  const auto dips = make_dips(5);
  std::vector<net::Endpoint> shuffled = {dips[3], dips[0], dips[4], dips[2],
                                         dips[1]};
  EXPECT_EQ(VipDigest::of(vip_ep(), dips), VipDigest::of(vip_ep(), shuffled));
}

TEST(VipDigest, EmptyPoolIsNotAbsentVip) {
  const std::vector<net::Endpoint> none;
  EXPECT_NE(VipDigest::of(vip_ep(), none), 0u);
  EXPECT_EQ(VipDigest::of(vip_ep(), none), VipDigest::presence_token(vip_ep()));
  EXPECT_NE(VipDigest::of(vip_ep(1), none), VipDigest::of(vip_ep(2), none));
}

TEST(VipDigest, MemberTokensAreSaltedPerVip) {
  // Identical DIP sets under different VIPs must not cancel: the member
  // token depends on the VIP key, not just the DIP.
  EXPECT_NE(VipDigest::member_token(vip_ep(1), dip_ep(7)),
            VipDigest::member_token(vip_ep(2), dip_ep(7)));
  const auto dips = make_dips(3);
  EXPECT_NE(VipDigest::of(vip_ep(1), dips) ^ VipDigest::of(vip_ep(2), dips),
            VipDigest::presence_token(vip_ep(1)) ^
                VipDigest::presence_token(vip_ep(2)));
}

TEST(VipDigest, MembershipIsAnO1Toggle) {
  const auto dips = make_dips(2);
  const std::vector<net::Endpoint> both = {dips[0], dips[1]};
  const std::vector<net::Endpoint> one = {dips[0]};
  EXPECT_EQ(VipDigest::of(vip_ep(), one) ^
                VipDigest::member_token(vip_ep(), dips[1]),
            VipDigest::of(vip_ep(), both));
}

// --- Watermarks, lag, and the hysteretic SLO --------------------------------

TEST(FleetObserver, EffectiveWatermarkExtendsThroughOutOfBandPositions) {
  FleetObserver observer(1);
  const auto dips = make_dips(2);
  observer.on_append_config(1, 10, vip_ep(), dips);
  observer.on_mirror_config(0, vip_ep(), dips, 1, 10);
  EXPECT_EQ(observer.watermark(0), 0u);
  EXPECT_EQ(observer.effective_watermark(0), 1u);
  EXPECT_EQ(observer.lag_positions(0), 0u);
  // A later in-order delivery folds the out-of-band run into the watermark.
  observer.on_append_update(2, 20, vip_ep(), dip_ep(9), true);
  observer.on_mirror_update(0, vip_ep(), dip_ep(9), true, 2, 20);
  observer.on_watermark(0, 2, 20);
  EXPECT_EQ(observer.watermark(0), 2u);
  EXPECT_EQ(observer.effective_watermark(0), 2u);
  EXPECT_EQ(observer.divergences(), 0u);
}

TEST(FleetObserver, SloHysteresisEntersExitsAndBurns) {
  FleetObserver::Options options;
  options.lag_enter = 4;
  options.lag_exit = 1;
  FleetObserver observer(1, options);
  const auto dips = make_dips(8);
  sim::Time now = 0;
  for (std::uint64_t pos = 1; pos <= 8; ++pos) {
    now += 100;
    observer.on_append_update(pos, now, vip_ep(), dips[pos - 1], true);
  }
  observer.evaluate(now);
  EXPECT_EQ(observer.lag_positions(0), 8u);
  EXPECT_GT(observer.lag_age(0), 0u);
  EXPECT_FALSE(observer.slo_ok());
  EXPECT_EQ(observer.slo_transitions(), 1u);
  // Burn accrues while violated.
  observer.evaluate(now + 1000);
  EXPECT_GE(observer.slo_burn_ns(), 1000u);
  // Catching up past lag_exit clears the latch and the violation.
  for (std::uint64_t pos = 1; pos <= 8; ++pos) {
    observer.on_mirror_update(0, vip_ep(), dips[pos - 1], true, pos,
                              now + 2000);
    observer.on_watermark(0, pos, now + 2000);
  }
  observer.evaluate(now + 2000);
  EXPECT_EQ(observer.lag_positions(0), 0u);
  EXPECT_TRUE(observer.slo_ok());
  EXPECT_EQ(observer.slo_transitions(), 2u);
  EXPECT_EQ(observer.divergences(), 0u);
  // Hysteresis: a lag between exit and enter does not re-enter lagging.
  observer.on_append_update(9, now + 3000, vip_ep(), dip_ep(50), true);
  observer.on_append_update(10, now + 3000, vip_ep(), dip_ep(51), true);
  observer.evaluate(now + 3000);
  EXPECT_EQ(observer.lag_positions(0), 2u);
  EXPECT_TRUE(observer.slo_ok());
}

// --- Divergence detection ----------------------------------------------------

TEST(FleetObserver, SilentDivergenceAttributesPerVipDeltas) {
  FleetObserver observer(2);
  std::vector<DivergenceFinding> fired;
  observer.set_divergence_callback(
      [&fired](const DivergenceFinding& finding) { fired.push_back(finding); });
  const auto dips = make_dips(3);
  observer.on_append_config(1, 10, vip_ep(), dips);
  observer.on_mirror_config(0, vip_ep(), dips, 1, 10);
  observer.on_mirror_config(1, vip_ep(), dips, 1, 10);
  observer.evaluate(20);
  EXPECT_EQ(observer.divergences(), 0u);

  // Switch 1's apply path silently loses a member: the check fires on that
  // very feed, attributing the missing DIP.
  observer.on_mirror_update(1, vip_ep(), dips[2], false, 0, 30);
  EXPECT_EQ(observer.divergences(), 1u);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].switch_index, 1u);
  EXPECT_EQ(fired[0].position, 1u);
  auto findings = observer.findings();
  ASSERT_EQ(findings.size(), 1u);
  ASSERT_EQ(findings[0].deltas.size(), 1u);
  EXPECT_EQ(findings[0].deltas[0].vip, vip_ep());
  ASSERT_EQ(findings[0].deltas[0].missing.size(), 1u);
  EXPECT_EQ(findings[0].deltas[0].missing[0], dips[2]);
  EXPECT_TRUE(findings[0].deltas[0].extra.empty());

  // Heal, then gain a stray member instead: a fresh episode attributes the
  // extra DIP.
  observer.on_mirror_update(1, vip_ep(), dips[2], true, 0, 40);
  observer.on_mirror_update(1, vip_ep(), dip_ep(99), true, 0, 41);
  EXPECT_EQ(observer.divergences(), 2u);
  findings = observer.findings();
  ASSERT_EQ(findings.size(), 2u);
  ASSERT_EQ(findings[1].deltas.size(), 1u);
  EXPECT_TRUE(findings[1].deltas[0].missing.empty());
  ASSERT_EQ(findings[1].deltas[0].extra.size(), 1u);
  EXPECT_EQ(findings[1].deltas[0].extra[0], dip_ep(99));
  // The healthy replica is untouched.
  EXPECT_EQ(observer.switch_digest(0), observer.desired_digest());
  EXPECT_TRUE(observer.verify_digests());
}

TEST(FleetObserver, EpisodeLatchDedupsUntilDigestsAgreeAgain) {
  FleetObserver observer(1);
  const auto dips = make_dips(2);
  observer.on_append_config(1, 10, vip_ep(), dips);
  observer.on_mirror_config(0, vip_ep(), dips, 1, 10);
  observer.on_mirror_update(0, vip_ep(), dips[0], false, 0, 20);
  EXPECT_EQ(observer.divergences(), 1u);
  // Still diverged: repeated evaluation reports the same episode once.
  observer.evaluate(30);
  observer.evaluate(40);
  EXPECT_EQ(observer.divergences(), 1u);
  // Heal, then diverge again: a fresh episode is counted.
  observer.on_mirror_update(0, vip_ep(), dips[0], true, 0, 50);
  EXPECT_EQ(observer.divergences(), 1u);
  observer.on_mirror_update(0, vip_ep(), dips[1], false, 0, 60);
  EXPECT_EQ(observer.divergences(), 2u);
}

TEST(FleetObserver, ChecksAreSuspendedDuringResyncSessions) {
  FleetObserver observer(1);
  const auto dips = make_dips(2);
  observer.on_append_config(1, 10, vip_ep(), dips);
  observer.on_mirror_config(0, vip_ep(), dips, 1, 10);
  // A session opens (window-wipe edge): the switch stops being checkable,
  // so mid-resync mirror churn is not misread as divergence.
  observer.on_session_open(0, 77, 20);
  EXPECT_EQ(observer.state(0), FleetObserver::SwitchState::kResyncing);
  observer.on_mirror_update(0, vip_ep(), dips[0], false, 0, 21);
  observer.evaluate(22);
  EXPECT_EQ(observer.divergences(), 0u);
  // The replay heals the mirror before the session closes; the close makes
  // the switch checkable again and finds it consistent.
  observer.on_resync_begin(0, 77, FleetObserver::ResyncKind::kDelta, 23);
  observer.on_mirror_update(0, vip_ep(), dips[0], true, 0, 24);
  observer.on_resync_end(0, 77, 25);
  EXPECT_EQ(observer.state(0), FleetObserver::SwitchState::kLive);
  observer.evaluate(26);
  EXPECT_EQ(observer.divergences(), 0u);
  const auto findings = observer.findings();
  EXPECT_TRUE(findings.empty());
}

TEST(FleetObserver, CompactedHistoryIsUnverifiableNotDivergent) {
  FleetObserver::Options options;
  options.digest_history = 2;
  FleetObserver observer(1, options);
  for (std::uint64_t pos = 1; pos <= 10; ++pos) {
    observer.on_append_update(pos, pos * 10, vip_ep(), dip_ep(pos), true);
  }
  // Watermark 5 fell off the 2-entry history ring: the check is counted as
  // unverifiable instead of comparing against the wrong reference.
  observer.on_watermark(0, 5, 200);
  EXPECT_GE(observer.unverifiable_checks(), 1u);
  EXPECT_EQ(observer.divergences(), 0u);
}

// --- Through a real fleet ----------------------------------------------------

TEST(FleetConvergence, SeededMirrorCorruptionIsCaughtWithAttribution) {
  sim::Simulator sim;
  deploy::SilkRoadFleet fleet(sim, small_config(), 3);
  const auto dips = make_dips(4);
  fleet.add_vip(vip_ep(), dips);
  sim.run();
  fleet.request_update(update_of(vip_ep(), dip_ep(8), true));
  sim.run();
  ASSERT_NE(fleet.observer(), nullptr);
  fleet.observer()->evaluate(sim.now());
  EXPECT_EQ(fleet.observer()->divergences(), 0u);

  fleet.inject_mirror_corruption(1, vip_ep(), dips[2], /*add=*/false);
  EXPECT_EQ(fleet.observer()->divergences(), 1u);
  const auto findings = fleet.observer()->findings();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].switch_index, 1u);
  ASSERT_EQ(findings[0].deltas.size(), 1u);
  ASSERT_EQ(findings[0].deltas[0].missing.size(), 1u);
  EXPECT_EQ(findings[0].deltas[0].missing[0], dips[2]);
  EXPECT_TRUE(findings[0].deltas[0].extra.empty());

  // The divergence callback assembled a ForensicsReport with the finding's
  // attribution attached.
  ASSERT_EQ(fleet.divergence_reports().size(), 1u);
  const auto& report = fleet.divergence_reports()[0];
  EXPECT_NE(report.reason.find("silent divergence"), std::string::npos);
  EXPECT_FALSE(report.divergence_text.empty());
  EXPECT_NE(report.to_json().find("\"divergence\":"), std::string::npos);

  // Healing the mirror re-arms the episode latch; no further findings.
  fleet.inject_mirror_corruption(1, vip_ep(), dips[2], /*add=*/true);
  fleet.observer()->evaluate(sim.now());
  EXPECT_EQ(fleet.observer()->divergences(), 1u);
  EXPECT_TRUE(fleet.observer()->verify_digests());
}

TEST(FleetConvergence, IncrementalDigestsEqualRecomputeAcrossInterleavings) {
  // Property: after any interleaving of updates, crashes, restores, and
  // partial deliveries, every incrementally-maintained digest equals a full
  // recompute, and a fault-free fleet reports zero silent divergences.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    std::mt19937_64 rng(0x51172D00ULL + seed);
    sim::Simulator sim;
    fault::ControlChannel::Config channel;
    channel.base_delay = 100 * sim::kMicrosecond;
    channel.jitter = 400 * sim::kMicrosecond;
    channel.drop_probability = 0.1;
    deploy::SyncConfig sync;
    sync.journal_capacity = 64;  // Force occasional full-state escalation.
    sync.chunk_entries = 4;
    deploy::SilkRoadFleet fleet(sim, small_config(), 3, 0xFEE7ULL + seed,
                                channel, sync);
    const auto dips = make_dips(6);
    fleet.add_vip(vip_ep(1), dips);
    fleet.add_vip(vip_ep(2), {dips[0], dips[1]});
    sim.run();
    std::vector<bool> up(3, true);
    for (int step = 0; step < 120; ++step) {
      const std::uint32_t roll = static_cast<std::uint32_t>(rng() % 100);
      if (roll < 70) {
        const net::Endpoint vip = vip_ep(1 + rng() % 2);
        fleet.request_update(
            update_of(vip, dips[rng() % dips.size()], rng() % 2 == 0));
      } else if (roll < 78) {
        const std::size_t victim = rng() % 3;
        if (up[victim] && fleet.live_count() > 1) {
          fleet.fail_switch(victim);
          up[victim] = false;
        }
      } else if (roll < 86) {
        const std::size_t victim = rng() % 3;
        if (!up[victim]) {
          fleet.restore_switch(victim);
          up[victim] = true;
        }
      } else {
        sim.run();  // Drain in-flight channel work before more churn.
      }
      if (step % 16 == 0) {
        EXPECT_TRUE(fleet.observer()->verify_digests()) << "seed " << seed;
      }
    }
    for (std::size_t i = 0; i < 3; ++i) {
      if (!up[i]) fleet.restore_switch(i);
    }
    sim.run();
    ASSERT_TRUE(fleet.converged()) << "seed " << seed;
    fleet.observer()->evaluate(sim.now());
    EXPECT_TRUE(fleet.observer()->verify_digests()) << "seed " << seed;
    EXPECT_EQ(fleet.observer()->divergences(), 0u) << "seed " << seed;
    EXPECT_EQ(fleet.observer()->selfcheck_failures(), 0u) << "seed " << seed;
    EXPECT_TRUE(fleet.observer()->slo_ok()) << "seed " << seed;
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(fleet.observer()->switch_digest(i),
                fleet.observer()->desired_digest())
          << "seed " << seed << " switch " << i;
    }
  }
}

TEST(FleetConvergence, RenderingsCarryTheHeadline) {
  sim::Simulator sim;
  deploy::SilkRoadFleet fleet(sim, small_config(), 2);
  fleet.add_vip(vip_ep(), make_dips(2));
  sim.run();
  fleet.observer()->evaluate(sim.now());
  const std::string text = fleet.observer()->to_text();
  EXPECT_NE(text.find("fleet convergence observatory"), std::string::npos);
  EXPECT_NE(text.find("divergences: 0"), std::string::npos);
  const std::string json = fleet.observer()->to_json();
  EXPECT_NE(json.find("\"journal_head\""), std::string::npos);
  EXPECT_NE(json.find("\"slo\""), std::string::npos);
  EXPECT_NE(json.find("\"switches\""), std::string::npos);
}

}  // namespace
}  // namespace silkroad::obs
