#include <gtest/gtest.h>

#include <set>

#include "core/health_checker.h"
#include "core/silkroad_switch.h"

namespace silkroad::core {
namespace {

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

struct Harness {
  sim::Simulator sim;
  core::SilkRoadSwitch lb;
  std::set<net::Endpoint> dead;

  explicit Harness(const HealthChecker::Config& config = {})
      : lb(sim,
           [] {
             SilkRoadSwitch::Config c;
             c.conn_table = SilkRoadSwitch::conn_table_for(4096);
             return c;
           }()),
        checker_config(config),
        checker(sim, lb, config,
                [this](const net::Endpoint& dip) { return !dead.contains(dip); }) {
    lb.add_vip(vip_ep(), make_dips(8));
    for (const auto& dip : make_dips(8)) checker.watch(vip_ep(), dip);
  }

  HealthChecker::Config checker_config;
  HealthChecker checker;
};

TEST(HealthChecker, DetectsFailureAfterThreshold) {
  Harness h({.probe_interval = sim::kSecond, .failure_threshold = 3});
  h.dead.insert(make_dips(8)[2]);
  int failures = 0;
  net::Endpoint failed_dip;
  h.checker.set_failure_callback(
      [&](const net::Endpoint&, const net::Endpoint& dip) {
        ++failures;
        failed_dip = dip;
      });
  // Two probe intervals: not yet declared.
  h.sim.run_until(2 * sim::kSecond + 1);
  EXPECT_EQ(failures, 0);
  // Third missed probe crosses the threshold.
  h.sim.run_until(3 * sim::kSecond + 1);
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(failed_dip, make_dips(8)[2]);
  EXPECT_EQ(h.checker.failures_detected(), 1u);
  // The DIP is out of every pool (resilient in-place mode).
  h.sim.run_until(4 * sim::kSecond);
  const auto* mgr = h.lb.version_manager(vip_ep());
  EXPECT_FALSE(mgr->pool(mgr->current_version())->contains_live(make_dips(8)[2]));
}

TEST(HealthChecker, TransientBlipBelowThresholdIsIgnored) {
  Harness h({.probe_interval = sim::kSecond, .failure_threshold = 3});
  h.dead.insert(make_dips(8)[1]);
  h.sim.run_until(2 * sim::kSecond + 1);  // two misses
  h.dead.erase(make_dips(8)[1]);          // recovers before the third
  h.sim.run_until(10 * sim::kSecond);
  EXPECT_EQ(h.checker.failures_detected(), 0u);
}

TEST(HealthChecker, RecoveryReAddsViaUpdatePath) {
  Harness h({.probe_interval = sim::kSecond, .failure_threshold = 2});
  const auto victim = make_dips(8)[4];
  h.dead.insert(victim);
  int recoveries = 0;
  h.checker.set_recovery_callback(
      [&](const net::Endpoint&, const net::Endpoint&) { ++recoveries; });
  h.sim.run_until(3 * sim::kSecond);
  EXPECT_EQ(h.checker.failures_detected(), 1u);
  h.dead.erase(victim);  // server reboots
  h.sim.run_until(10 * sim::kSecond);
  EXPECT_EQ(h.checker.recoveries_detected(), 1u);
  EXPECT_EQ(recoveries, 1);
  const auto* mgr = h.lb.version_manager(vip_ep());
  EXPECT_TRUE(mgr->pool(mgr->current_version())->contains_live(victim));
}

TEST(HealthChecker, UnwatchStopsProbing) {
  Harness h({.probe_interval = sim::kSecond, .failure_threshold = 1});
  for (const auto& dip : make_dips(8)) h.checker.unwatch(vip_ep(), dip);
  EXPECT_EQ(h.checker.watched(), 0u);
  h.dead.insert(make_dips(8)[0]);
  h.sim.run_until(5 * sim::kSecond);
  EXPECT_EQ(h.checker.probes_sent(), 0u);
  EXPECT_EQ(h.checker.failures_detected(), 0u);
}

TEST(HealthChecker, BandwidthMatchesPaperEstimate) {
  // §7: 10K DIPs probed every 10 s with 100-byte packets ~ 800 Kbps.
  sim::Simulator sim;
  SilkRoadSwitch::Config c;
  c.conn_table = SilkRoadSwitch::conn_table_for(4096);
  SilkRoadSwitch lb(sim, c);
  HealthChecker checker(sim, lb,
                        {.probe_interval = 10 * sim::kSecond,
                         .failure_threshold = 3,
                         .probe_bytes = 100},
                        [](const net::Endpoint&) { return true; });
  lb.add_vip(vip_ep(), {});
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    checker.watch(vip_ep(), {net::IpAddress::v4(0x0A000000 + i), 20});
  }
  EXPECT_NEAR(checker.probe_bandwidth_bps(), 800'000.0, 1.0);
  EXPECT_EQ(checker.detection_latency(), 30 * sim::kSecond);
}

TEST(HealthChecker, WatchIsIdempotent) {
  Harness h({.probe_interval = sim::kSecond, .failure_threshold = 1});
  h.checker.watch(vip_ep(), make_dips(8)[0]);  // duplicate
  EXPECT_EQ(h.checker.watched(), 8u);
}

TEST(HealthChecker, RecoveryRequiresConsecutiveGoodProbes) {
  // Square wave: down from t=0, up from t=4.5 s. With probes every second,
  // a failure_threshold of 2 declares at t=2; recovery_threshold=3 needs the
  // good probes at t=5,6,7 — so the re-add lands exactly at t=7.
  Harness h({.probe_interval = sim::kSecond,
             .failure_threshold = 2,
             .recovery_threshold = 3});
  const auto victim = make_dips(8)[3];
  h.dead.insert(victim);
  h.sim.schedule_at(4 * sim::kSecond + sim::kSecond / 2,
                    [&] { h.dead.erase(victim); });
  h.sim.run_until(2 * sim::kSecond + 1);
  EXPECT_EQ(h.checker.failures_detected(), 1u);
  h.sim.run_until(6 * sim::kSecond + sim::kSecond / 2);
  // Two good probes (t=5, t=6): still held out.
  EXPECT_EQ(h.checker.recoveries_detected(), 0u);
  const auto* mgr = h.lb.version_manager(vip_ep());
  EXPECT_FALSE(mgr->pool(mgr->current_version())->contains_live(victim));
  h.sim.run_until(7 * sim::kSecond + sim::kSecond / 2);
  EXPECT_EQ(h.checker.recoveries_detected(), 1u);
  h.sim.run_until(10 * sim::kSecond);
  EXPECT_TRUE(mgr->pool(mgr->current_version())->contains_live(victim));
}

TEST(HealthChecker, InterruptedRecoveryStreakResetsTheCounter) {
  Harness h({.probe_interval = sim::kSecond,
             .failure_threshold = 1,
             .recovery_threshold = 3});
  const auto victim = make_dips(8)[5];
  h.dead.insert(victim);
  // Up for two probes (t=2,3), down again for t=4, then up for good: the
  // streak must restart, putting recovery at t=7 (goods at 5,6,7).
  h.sim.schedule_at(sim::kSecond + sim::kSecond / 2,
                    [&] { h.dead.erase(victim); });
  h.sim.schedule_at(3 * sim::kSecond + sim::kSecond / 2,
                    [&] { h.dead.insert(victim); });
  h.sim.schedule_at(4 * sim::kSecond + sim::kSecond / 2,
                    [&] { h.dead.erase(victim); });
  h.sim.run_until(6 * sim::kSecond + sim::kSecond / 2);
  EXPECT_EQ(h.checker.recoveries_detected(), 0u);
  h.sim.run_until(7 * sim::kSecond + sim::kSecond / 2);
  EXPECT_EQ(h.checker.recoveries_detected(), 1u);
}

TEST(HealthChecker, FlapDampingSuppressesUnstableDip) {
  // A DIP that keeps dying accumulates flap score (2.0 per declaration,
  // decaying 0.1 per probe); once the score crosses 3.0, recovery is
  // withheld until sustained stability decays it back down.
  Harness h({.probe_interval = sim::kSecond,
             .failure_threshold = 1,
             .recovery_threshold = 1,
             .flap_penalty = 2.0,
             .flap_suppress_threshold = 3.0,
             .flap_decay = 0.1});
  const auto victim = make_dips(8)[6];
  h.dead.insert(victim);
  h.sim.schedule_at(sim::kSecond + sim::kSecond / 2,
                    [&] { h.dead.erase(victim); });
  h.sim.schedule_at(2 * sim::kSecond + sim::kSecond / 2,
                    [&] { h.dead.insert(victim); });
  h.sim.schedule_at(3 * sim::kSecond + sim::kSecond / 2,
                    [&] { h.dead.erase(victim); });
  // First cycle recovers normally (score 2.0 < 3.0)...
  h.sim.run_until(2 * sim::kSecond + 1);
  EXPECT_EQ(h.checker.recoveries_detected(), 1u);
  // ...second failure pushes the score to ~3.8: the good probes afterwards
  // are suppressed even though the server answers.
  h.sim.run_until(8 * sim::kSecond);
  EXPECT_EQ(h.checker.failures_detected(), 2u);
  EXPECT_EQ(h.checker.recoveries_detected(), 1u);
  EXPECT_GT(h.checker.recoveries_suppressed(), 0u);
  const auto* mgr = h.lb.version_manager(vip_ep());
  EXPECT_FALSE(mgr->pool(mgr->current_version())->contains_live(victim));
  // Sustained stability decays the score below the threshold: re-added.
  h.sim.run_until(30 * sim::kSecond);
  EXPECT_EQ(h.checker.recoveries_detected(), 2u);
  EXPECT_TRUE(mgr->pool(mgr->current_version())->contains_live(victim));
}

TEST(HealthChecker, StopDrainsTheEventQueue) {
  Harness h({.probe_interval = sim::kSecond, .failure_threshold = 1});
  h.checker.stop();
  h.sim.run();  // returns only if no probe is scheduled
  EXPECT_EQ(h.checker.probes_sent(), 0u);
}

}  // namespace
}  // namespace silkroad::core
