#include <gtest/gtest.h>

#include <set>

#include "core/health_checker.h"

namespace silkroad::core {
namespace {

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

struct Harness {
  sim::Simulator sim;
  core::SilkRoadSwitch lb;
  std::set<net::Endpoint> dead;

  explicit Harness(const HealthChecker::Config& config = {})
      : lb(sim,
           [] {
             SilkRoadSwitch::Config c;
             c.conn_table = SilkRoadSwitch::conn_table_for(4096);
             return c;
           }()),
        checker_config(config),
        checker(sim, lb, config,
                [this](const net::Endpoint& dip) { return !dead.contains(dip); }) {
    lb.add_vip(vip_ep(), make_dips(8));
    for (const auto& dip : make_dips(8)) checker.watch(vip_ep(), dip);
  }

  HealthChecker::Config checker_config;
  HealthChecker checker;
};

TEST(HealthChecker, DetectsFailureAfterThreshold) {
  Harness h({.probe_interval = sim::kSecond, .failure_threshold = 3});
  h.dead.insert(make_dips(8)[2]);
  int failures = 0;
  net::Endpoint failed_dip;
  h.checker.set_failure_callback(
      [&](const net::Endpoint&, const net::Endpoint& dip) {
        ++failures;
        failed_dip = dip;
      });
  // Two probe intervals: not yet declared.
  h.sim.run_until(2 * sim::kSecond + 1);
  EXPECT_EQ(failures, 0);
  // Third missed probe crosses the threshold.
  h.sim.run_until(3 * sim::kSecond + 1);
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(failed_dip, make_dips(8)[2]);
  EXPECT_EQ(h.checker.failures_detected(), 1u);
  // The DIP is out of every pool (resilient in-place mode).
  h.sim.run_until(4 * sim::kSecond);
  const auto* mgr = h.lb.version_manager(vip_ep());
  EXPECT_FALSE(mgr->pool(mgr->current_version())->contains_live(make_dips(8)[2]));
}

TEST(HealthChecker, TransientBlipBelowThresholdIsIgnored) {
  Harness h({.probe_interval = sim::kSecond, .failure_threshold = 3});
  h.dead.insert(make_dips(8)[1]);
  h.sim.run_until(2 * sim::kSecond + 1);  // two misses
  h.dead.erase(make_dips(8)[1]);          // recovers before the third
  h.sim.run_until(10 * sim::kSecond);
  EXPECT_EQ(h.checker.failures_detected(), 0u);
}

TEST(HealthChecker, RecoveryReAddsViaUpdatePath) {
  Harness h({.probe_interval = sim::kSecond, .failure_threshold = 2});
  const auto victim = make_dips(8)[4];
  h.dead.insert(victim);
  int recoveries = 0;
  h.checker.set_recovery_callback(
      [&](const net::Endpoint&, const net::Endpoint&) { ++recoveries; });
  h.sim.run_until(3 * sim::kSecond);
  EXPECT_EQ(h.checker.failures_detected(), 1u);
  h.dead.erase(victim);  // server reboots
  h.sim.run_until(10 * sim::kSecond);
  EXPECT_EQ(h.checker.recoveries_detected(), 1u);
  EXPECT_EQ(recoveries, 1);
  const auto* mgr = h.lb.version_manager(vip_ep());
  EXPECT_TRUE(mgr->pool(mgr->current_version())->contains_live(victim));
}

TEST(HealthChecker, UnwatchStopsProbing) {
  Harness h({.probe_interval = sim::kSecond, .failure_threshold = 1});
  for (const auto& dip : make_dips(8)) h.checker.unwatch(vip_ep(), dip);
  EXPECT_EQ(h.checker.watched(), 0u);
  h.dead.insert(make_dips(8)[0]);
  h.sim.run_until(5 * sim::kSecond);
  EXPECT_EQ(h.checker.probes_sent(), 0u);
  EXPECT_EQ(h.checker.failures_detected(), 0u);
}

TEST(HealthChecker, BandwidthMatchesPaperEstimate) {
  // §7: 10K DIPs probed every 10 s with 100-byte packets ~ 800 Kbps.
  sim::Simulator sim;
  SilkRoadSwitch::Config c;
  c.conn_table = SilkRoadSwitch::conn_table_for(4096);
  SilkRoadSwitch lb(sim, c);
  HealthChecker checker(sim, lb,
                        {.probe_interval = 10 * sim::kSecond,
                         .failure_threshold = 3,
                         .probe_bytes = 100},
                        [](const net::Endpoint&) { return true; });
  lb.add_vip(vip_ep(), {});
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    checker.watch(vip_ep(), {net::IpAddress::v4(0x0A000000 + i), 20});
  }
  EXPECT_NEAR(checker.probe_bandwidth_bps(), 800'000.0, 1.0);
  EXPECT_EQ(checker.detection_latency(), 30 * sim::kSecond);
}

TEST(HealthChecker, WatchIsIdempotent) {
  Harness h({.probe_interval = sim::kSecond, .failure_threshold = 1});
  h.checker.watch(vip_ep(), make_dips(8)[0]);  // duplicate
  EXPECT_EQ(h.checker.watched(), 8u);
}

}  // namespace
}  // namespace silkroad::core
