#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "asic/bloom_filter.h"
#include "asic/learning_filter.h"
#include "asic/meter.h"
#include "asic/register_array.h"
#include "asic/resources.h"
#include "asic/sram.h"
#include "asic/switch_cpu.h"
#include "sim/event_queue.h"

namespace silkroad::asic {
namespace {

net::FiveTuple make_flow(std::uint32_t client) {
  return net::FiveTuple{{net::IpAddress::v4(0x0B000000 + client), 1000},
                        {net::IpAddress::v4(0x14000001), 80},
                        net::Protocol::kTcp};
}

// --- SRAM geometry -----------------------------------------------------------

TEST(Sram, WordPackingMatchesPaper) {
  // §6.1: 28-bit entries pack exactly 4 per 112-bit word.
  EXPECT_EQ(entries_per_word(28), 4u);
  EXPECT_EQ(words_for_entries(8, 28), 2u);
  EXPECT_EQ(words_for_entries(9, 28), 3u);
  // 1M connections at 28 bits ~ 3.5 MB.
  EXPECT_NEAR(static_cast<double>(sram_bytes_for_entries(1'000'000, 28)),
              3.5e6, 0.1e6);
}

TEST(Sram, GenerationsTrendUpward) {
  ASSERT_EQ(std::size(kAsicGenerations), 3u);
  EXPECT_LT(kAsicGenerations[0].sram_mb_high,
            kAsicGenerations[2].sram_mb_low + 50);
  EXPECT_GT(kAsicGenerations[2].capacity_tbps,
            kAsicGenerations[0].capacity_tbps);
}

// --- Learning filter ----------------------------------------------------------

TEST(LearningFilter, DedupsAndFlushesOnTimeout) {
  sim::Simulator sim;
  std::vector<std::vector<LearnEvent>> batches;
  LearningFilter filter(sim, {.capacity = 100, .timeout = sim::kMillisecond},
                        [&](std::vector<LearnEvent> b) {
                          batches.push_back(std::move(b));
                        });
  filter.learn(make_flow(1), 10);
  filter.learn(make_flow(1), 10);  // duplicate
  filter.learn(make_flow(2), 11);
  EXPECT_EQ(filter.pending_count(), 2u);
  EXPECT_EQ(filter.duplicate_events(), 1u);
  sim.run();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 2u);
  EXPECT_EQ(batches[0][0].flow, make_flow(1));
  EXPECT_EQ(batches[0][0].value, 10u);
  EXPECT_EQ(sim.now(), sim::kMillisecond);
  EXPECT_EQ(filter.pending_count(), 0u);
}

TEST(LearningFilter, FlushesWhenFull) {
  sim::Simulator sim;
  std::vector<std::size_t> batch_sizes;
  LearningFilter filter(
      sim, {.capacity = 4, .timeout = sim::kSecond},
      [&](std::vector<LearnEvent> b) { batch_sizes.push_back(b.size()); });
  for (std::uint32_t i = 0; i < 4; ++i) filter.learn(make_flow(i), i);
  // Capacity flush happens synchronously, before any timeout.
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes[0], 4u);
  EXPECT_EQ(sim.now(), 0u);
}

TEST(LearningFilter, TimeoutRearmsAfterFlush) {
  sim::Simulator sim;
  int flushes = 0;
  LearningFilter filter(sim, {.capacity = 100, .timeout = sim::kMillisecond},
                        [&](std::vector<LearnEvent>) { ++flushes; });
  filter.learn(make_flow(1), 0);
  sim.run();
  EXPECT_EQ(flushes, 1);
  filter.learn(make_flow(2), 0);
  sim.run();
  EXPECT_EQ(flushes, 2);
  EXPECT_EQ(sim.now(), 2 * sim::kMillisecond);
}

// --- Switch CPU ----------------------------------------------------------------

TEST(SwitchCpu, ProcessesAtServiceRate) {
  sim::Simulator sim;
  SwitchCpu cpu(sim, {.tasks_per_second = 1000.0});  // 1 ms per task
  std::vector<sim::Time> completions;
  for (int i = 0; i < 5; ++i) {
    cpu.enqueue([&] { completions.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(completions[static_cast<size_t>(i)],
              static_cast<sim::Time>(i + 1) * sim::kMillisecond);
  }
  EXPECT_EQ(cpu.completed_tasks(), 5u);
  EXPECT_TRUE(cpu.idle());
}

TEST(SwitchCpu, FifoOrder) {
  sim::Simulator sim;
  SwitchCpu cpu(sim, {.tasks_per_second = 1e6});
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) cpu.enqueue([&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SwitchCpu, MultiplePipesServeInParallel) {
  // §5.2: multiple cores handle insertions into different physical pipes.
  sim::Simulator sim;
  SwitchCpu cpu(sim, {.tasks_per_second = 1000.0, .pipes = 4});
  std::vector<sim::Time> completions;
  for (std::uint64_t i = 0; i < 8; ++i) {
    cpu.enqueue([&] { completions.push_back(sim.now()); }, /*shard=*/i);
  }
  sim.run();
  ASSERT_EQ(completions.size(), 8u);
  // 8 tasks over 4 pipes at 1 ms each: done in 2 ms, not 8 ms.
  EXPECT_EQ(sim.now(), 2 * sim::kMillisecond);
}

TEST(SwitchCpu, SameShardStaysOrdered) {
  sim::Simulator sim;
  SwitchCpu cpu(sim, {.tasks_per_second = 1000.0, .pipes = 4});
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    cpu.enqueue([&order, i] { order.push_back(i); }, /*shard=*/42);
  }
  sim.run();
  for (int i = 0; i < 6; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  EXPECT_EQ(sim.now(), 6 * sim::kMillisecond);  // one pipe, serialized
}

TEST(SwitchCpu, TasksEnqueuedFromTasksRun) {
  sim::Simulator sim;
  SwitchCpu cpu(sim, {.tasks_per_second = 1000.0});
  int done = 0;
  cpu.enqueue([&] {
    ++done;
    cpu.enqueue([&] { ++done; });
  });
  sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(sim.now(), 2 * sim::kMillisecond);
}

// --- Register array -------------------------------------------------------------

TEST(RegisterArray, WidthWrapAndTransactionalUpdate) {
  RegisterArray regs(8, 4);  // 4-bit cells
  regs.write(0, 0x1F);
  EXPECT_EQ(regs.read(0), 0xFu);  // masked to width
  const auto old = regs.update(1, [](std::uint64_t v) { return v + 3; });
  EXPECT_EQ(old, 0u);
  EXPECT_EQ(regs.read(1), 3u);
  EXPECT_EQ(regs.total_bits(), 32u);
}

TEST(RegisterArray, SaturatingIncrement) {
  RegisterArray regs(2, 2);  // max value 3
  regs.increment(0, 2);
  regs.increment(0, 5);
  EXPECT_EQ(regs.read(0), 3u);  // saturated, not wrapped
}

TEST(RegisterArray, OutOfRangeThrows) {
  RegisterArray regs(2, 8);
  EXPECT_THROW(regs.read(5), std::out_of_range);
}

// --- Bloom filter ---------------------------------------------------------------

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bloom(256, 3);
  for (std::uint32_t i = 0; i < 200; ++i) bloom.insert(make_flow(i));
  for (std::uint32_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(bloom.maybe_contains(make_flow(i)));
  }
}

TEST(BloomFilter, ClearEmptiesFilter) {
  BloomFilter bloom(64, 3);
  bloom.insert(make_flow(1));
  EXPECT_TRUE(bloom.maybe_contains(make_flow(1)));
  bloom.clear();
  EXPECT_FALSE(bloom.maybe_contains(make_flow(1)));
  EXPECT_DOUBLE_EQ(bloom.fill_ratio(), 0.0);
}

class BloomFp : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BloomFp, FalsePositiveRateNearTheory) {
  const std::size_t bytes = GetParam();
  BloomFilter bloom(bytes, 3);
  const std::size_t n = bytes;  // load factor k*n/m = 3/8
  for (std::uint32_t i = 0; i < n; ++i) bloom.insert(make_flow(i));
  std::size_t fp = 0;
  const std::size_t probes = 20000;
  for (std::uint32_t i = 0; i < probes; ++i) {
    if (bloom.maybe_contains(make_flow(1'000'000 + i))) ++fp;
  }
  const double expected =
      BloomFilter::expected_fp_rate(bytes * 8, 3, n);
  const double measured = static_cast<double>(fp) / probes;
  EXPECT_NEAR(measured, expected, expected * 0.5 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BloomFp,
                         ::testing::Values(std::size_t{8}, std::size_t{64},
                                           std::size_t{256}, std::size_t{1024}));

// --- Meter (RFC 4115) ------------------------------------------------------------

TEST(Meter, MarksGreenUnderCommittedRate) {
  TwoRateThreeColorMeter meter({.cir_bps = 8e6,  // 1 MB/s
                                .eir_bps = 8e6,
                                .cbs_bytes = 10000,
                                .ebs_bytes = 10000});
  // Send 0.5 MB/s: 500-byte packet every millisecond.
  sim::Time t = 0;
  for (int i = 0; i < 1000; ++i) {
    t += sim::kMillisecond;
    EXPECT_EQ(meter.mark(t, 500), MeterColor::kGreen);
  }
}

TEST(Meter, MarksRedWhenBothBucketsExhausted) {
  TwoRateThreeColorMeter meter({.cir_bps = 8000,  // 1 KB/s
                                .eir_bps = 8000,
                                .cbs_bytes = 1000,
                                .ebs_bytes = 1000});
  // Burst far beyond CBS+EBS at t=1s.
  int green = 0, yellow = 0, red = 0;
  for (int i = 0; i < 100; ++i) {
    switch (meter.mark(sim::kSecond, 100)) {
      case MeterColor::kGreen: ++green; break;
      case MeterColor::kYellow: ++yellow; break;
      case MeterColor::kRed: ++red; break;
    }
  }
  // ~2KB of bucket (CBS 1000 + 1s refill 1000 capped at CBS => 1000) + EBS.
  EXPECT_GT(green, 0);
  EXPECT_GT(yellow, 0);
  EXPECT_GT(red, 0);
  EXPECT_EQ(green + yellow + red, 100);
}

TEST(Meter, LongRunRateAccuracyWithinOnePercent) {
  // §5.2: the paper measures <1% average marking error. Offer 2x the
  // committed rate; green share must be 50% +- 1%.
  const double cir = 1e9;  // 1 Gbps
  TwoRateThreeColorMeter meter({.cir_bps = cir,
                                .eir_bps = cir,
                                .cbs_bytes = 64 * 1024,
                                .ebs_bytes = 64 * 1024});
  const std::uint32_t pkt = 1000;
  const double offered_bps = 2e9;
  const double pkts_per_sec = offered_bps / (pkt * 8);
  const sim::Time gap =
      static_cast<sim::Time>(static_cast<double>(sim::kSecond) / pkts_per_sec);
  sim::Time t = 0;
  std::uint64_t green_bytes = 0, total_bytes = 0;
  for (int i = 0; i < 500000; ++i) {
    t += gap;
    if (meter.mark(t, pkt) == MeterColor::kGreen) green_bytes += pkt;
    total_bytes += pkt;
  }
  const double green_share =
      static_cast<double>(green_bytes) / static_cast<double>(total_bytes);
  EXPECT_NEAR(green_share, 0.5, 0.01);
}

TEST(Meter, SramFor40kMetersAboutOnePercent) {
  // §5.2: 40K meter instances ~ 1% of a ~60 MB SRAM budget.
  const double bytes =
      40000.0 * TwoRateThreeColorMeter::sram_bits_per_instance() / 8;
  EXPECT_LT(bytes / (60e6), 0.012);
}

// --- Resource model ---------------------------------------------------------------

TEST(Resources, SilkRoadRatiosNearPaperTable2) {
  const ResourceVector usage = silkroad_usage(SilkRoadLayout{});
  const ResourceVector pct = usage.percent_of(baseline_switch_p4_usage());
  const ResourceVector paper = paper_table2_reference();
  EXPECT_NEAR(pct.match_crossbar_bits, paper.match_crossbar_bits, 8.0);
  EXPECT_NEAR(pct.sram_bytes, paper.sram_bytes, 6.0);
  EXPECT_DOUBLE_EQ(pct.tcam_bytes, 0.0);
  EXPECT_NEAR(pct.vliw_actions, paper.vliw_actions, 5.0);
  EXPECT_NEAR(pct.hash_bits, paper.hash_bits, 10.0);
  EXPECT_NEAR(pct.stateful_alus, paper.stateful_alus, 5.0);
  EXPECT_NEAR(pct.phv_bits, paper.phv_bits, 0.5);
}

TEST(Resources, UsageScalesWithConnections) {
  SilkRoadLayout one_m;
  SilkRoadLayout ten_m;
  ten_m.connections = 10'000'000;
  const auto small = silkroad_usage(one_m);
  const auto large = silkroad_usage(ten_m);
  EXPECT_GT(large.sram_bytes, 8 * small.sram_bytes * 0.9);
  // Non-memory resources barely move with table size.
  EXPECT_EQ(large.vliw_actions, small.vliw_actions);
  EXPECT_EQ(large.stateful_alus, small.stateful_alus);
}

TEST(Resources, TenMillionConnectionsFitTofinoClassSram) {
  // §5.2: "up to 10M connections can fit in the on-chip SRAM".
  SilkRoadLayout layout;
  layout.connections = 10'000'000;
  const auto usage = silkroad_usage(layout);
  const ChipModel chip;
  EXPECT_LT(usage.sram_bytes, chip.totals().sram_bytes);
}

TEST(Resources, ChipTotalsInTable1Band) {
  const ChipModel chip;
  const double sram_mb = chip.totals().sram_bytes / 1e6;
  EXPECT_GE(sram_mb, 40.0);
  EXPECT_LE(sram_mb, 110.0);
}

}  // namespace
}  // namespace silkroad::asic
