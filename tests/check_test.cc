// The invariant auditor must be *proven* able to fail: each test seeds one
// class of state corruption through check::TestingHooks and asserts the
// auditor reports exactly that violation family — plus death tests proving
// SR_CHECK survives release builds and self_check() aborts on violations.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/invariant_auditor.h"
#include "check/sr_check.h"
#include "core/silkroad_switch.h"
#include "sim/event_queue.h"

namespace silkroad {
namespace {

struct DeathStyleGuard {
  DeathStyleGuard() { ::testing::FLAGS_gtest_death_test_style = "threadsafe"; }
};
const DeathStyleGuard death_style_guard;

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back(
        {net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

net::FiveTuple make_flow(std::uint32_t client) {
  return net::FiveTuple{{net::IpAddress::v4(0x0B000000 + client), 1234},
                        vip_ep(),
                        net::Protocol::kTcp};
}

class CheckTest : public ::testing::Test {
 protected:
  CheckTest() : sw_(sim_, config()) {
    sw_.add_vip(vip_ep(), make_dips(8));
  }

  static core::SilkRoadSwitch::Config config() {
    core::SilkRoadSwitch::Config c;
    c.conn_table = core::SilkRoadSwitch::conn_table_for(1'000);
    c.learning = {.capacity = 64, .timeout = sim::kMillisecond};
    return c;
  }

  /// Establishes `n` connections and drains the event queue so their
  /// ConnTable entries are installed.
  void establish(std::uint32_t n) {
    for (std::uint32_t client = 0; client < n; ++client) {
      net::Packet syn;
      syn.flow = make_flow(client);
      syn.syn = true;
      syn.size_bytes = 64;
      sw_.process_packet(syn);
    }
    sim_.run();
  }

  std::vector<std::string> violated_invariants() {
    const check::InvariantAuditor auditor(sw_);
    std::vector<std::string> families;
    for (const auto& violation : auditor.audit()) {
      families.push_back(violation.invariant);
    }
    return families;
  }

  sim::Simulator sim_;
  core::SilkRoadSwitch sw_;
};

TEST_F(CheckTest, HealthySwitchAuditsClean) {
  establish(50);
  EXPECT_GT(sw_.conn_table().size(), 0u);
  EXPECT_TRUE(violated_invariants().empty());
  sw_.self_check();  // must not abort
}

TEST_F(CheckTest, DetectsRefcountSkew) {
  establish(20);
  check::TestingHooks::skew_refcount(sw_, vip_ep());
  const auto families = violated_invariants();
  ASSERT_FALSE(families.empty());
  EXPECT_TRUE(std::count(families.begin(), families.end(), "refcount-match"));
}

TEST_F(CheckTest, DetectsStaleVersionReference) {
  establish(20);
  // A fresh switch has versions 1..63 in the recycling ring; stamping an
  // entry with one models the §4.4 hazard of a recycled version still being
  // referenced by a live connection.
  const auto* mgr = sw_.version_manager(vip_ep());
  ASSERT_NE(mgr, nullptr);
  const auto free = mgr->free_versions();
  ASSERT_FALSE(free.empty());
  check::TestingHooks::inject_stale_conn_entry(sw_, make_flow(9'000),
                                               free.front());
  const auto families = violated_invariants();
  EXPECT_TRUE(
      std::count(families.begin(), families.end(), "version-recycling"));
  EXPECT_TRUE(
      std::count(families.begin(), families.end(), "dip-pool-coverage"));
}

TEST_F(CheckTest, DetectsPhantomSramAccounting) {
  establish(20);
  check::TestingHooks::corrupt_slot_accounting(sw_);
  const auto families = violated_invariants();
  ASSERT_FALSE(families.empty());
  EXPECT_TRUE(std::count(families.begin(), families.end(), "sram-accounting"));
}

TEST_F(CheckTest, DetectsPhantomOccupancyInEmptyTable) {
  // The other direction: a slot marked used that the shadow index ignores.
  check::TestingHooks::corrupt_slot_accounting(sw_);
  const auto families = violated_invariants();
  EXPECT_TRUE(std::count(families.begin(), families.end(), "sram-accounting"));
}

TEST_F(CheckTest, DetectsTransitStateOutsideUpdateWindow) {
  establish(5);
  ASSERT_FALSE(sw_.update_in_flight());
  check::TestingHooks::pollute_transit(sw_, make_flow(77));
  const auto families = violated_invariants();
  ASSERT_FALSE(families.empty());
  EXPECT_TRUE(std::count(families.begin(), families.end(), "transit-window"));
}

TEST_F(CheckTest, AuditStaysCleanAcrossAnUpdate) {
  establish(30);
  workload::DipUpdate update;
  update.at = sim_.now();
  update.vip = vip_ep();
  update.dip = {net::IpAddress::v4(0x0A0000FF), 20};
  update.action = workload::UpdateAction::kAddDip;
  sw_.request_update(update);
  EXPECT_TRUE(violated_invariants().empty());  // audit at t_req
  sim_.run();
  EXPECT_TRUE(violated_invariants().empty());  // audit after completion
  EXPECT_EQ(sw_.stats().updates_completed, 1u);
}

using CheckDeathTest = CheckTest;

TEST_F(CheckDeathTest, SelfCheckAbortsOnCorruptedSwitch) {
  establish(10);
  check::TestingHooks::skew_refcount(sw_, vip_ep());
  EXPECT_DEATH(sw_.self_check(), "refcount");
}

TEST(SrCheckTest, ChecksSurviveReleaseBuilds) {
  SR_CHECK(true);                       // no-op
  SR_CHECKF(2 + 2 == 4, "arithmetic");  // no-op
  // SR_CHECK must fire in every build type — including RelWithDebInfo, where
  // NDEBUG strips a plain assert().
  EXPECT_DEATH(SR_CHECK(1 == 2), "SR_CHECK failed");
  EXPECT_DEATH(SR_CHECKF(false, "context %d", 42), "context 42");
}

TEST(SrCheckTest, DcheckMatchesBuildType) {
#if defined(NDEBUG) && !defined(SILKROAD_FORCE_DCHECKS)
  SR_DCHECK(false);  // compiled out: must not abort
#else
  EXPECT_DEATH(SR_DCHECK(false), "SR_CHECK failed");
#endif
}

}  // namespace
}  // namespace silkroad
