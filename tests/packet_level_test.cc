// Cross-validation: the packet-level runner must reproduce the flow-level
// model's verdicts — this is the empirical discharge of the "probe at
// mapping-risk events is exact" assumption (DESIGN.md §6).
#include <gtest/gtest.h>

#include "core/silkroad_switch.h"
#include "lb/duet.h"
#include "lb/ecmp_lb.h"
#include "lb/packet_level.h"
#include "lb/scenario.h"
#include "lb/slb.h"

namespace silkroad::lb {
namespace {

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

struct Workload {
  std::vector<workload::Flow> flows;
  std::vector<workload::DipUpdate> updates;
};

Workload make_workload(std::uint64_t seed, double arrivals_per_min,
                       double updates_per_min) {
  Workload w;
  sim::Simulator gen_sim;
  workload::FlowGenerator gen(
      gen_sim, {{vip_ep(), arrivals_per_min, workload::FlowProfile::hadoop(),
                 false}},
      seed);
  gen.start(2 * sim::kMinute,
            [&w](const workload::Flow& f) { w.flows.push_back(f); },
            [](const workload::Flow&) {});
  gen_sim.run();
  workload::UpdateGenerator ugen({.seed = seed + 1}, vip_ep(), make_dips(16));
  w.updates = ugen.generate(updates_per_min, 2 * sim::kMinute);
  return w;
}

template <typename MakeLb>
PacketLevelRunner::Stats run_packet_level(const Workload& w, MakeLb&& make) {
  sim::Simulator sim;
  auto lb = make(sim);
  lb->add_vip(vip_ep(), make_dips(16));
  PacketLevelRunner runner(sim, *lb, {.packet_interval = 20 * sim::kMillisecond});
  return runner.run(w.flows, w.updates);
}

template <typename MakeLb>
ScenarioStats run_flow_level(const Workload& w, MakeLb&& make) {
  sim::Simulator sim;
  auto lb = make(sim);
  ScenarioConfig config;
  config.horizon = 2 * sim::kMinute;
  config.vip_loads = {{vip_ep(), 0.0, workload::FlowProfile::hadoop(), false}};
  config.dip_pools = {make_dips(16)};
  config.updates = w.updates;
  config.replay_flows = w.flows;
  Scenario scenario(sim, *lb, config);
  return scenario.run();
}

auto make_silkroad = [](bool transit) {
  return [transit](sim::Simulator& sim) {
    core::SilkRoadSwitch::Config config;
    config.conn_table = core::SilkRoadSwitch::conn_table_for(50'000);
    config.use_transit_table = transit;
    return std::make_unique<core::SilkRoadSwitch>(sim, config);
  };
};

TEST(PacketLevelAgreement, SilkRoadZeroViolationsAtPacketGranularity) {
  const auto w = make_workload(31, 800.0, 20.0);
  const auto packet = run_packet_level(w, make_silkroad(true));
  const auto flow = run_flow_level(w, make_silkroad(true));
  EXPECT_GT(packet.flows, 500u);
  EXPECT_EQ(packet.violations, 0u);  // every single packet checked
  EXPECT_EQ(flow.violations, 0u);
}

TEST(PacketLevelAgreement, EcmpVerdictsAgree) {
  const auto w = make_workload(32, 600.0, 15.0);
  const auto make = [](sim::Simulator&) {
    return std::make_unique<EcmpLoadBalancer>();
  };
  const auto packet = run_packet_level(w, make);
  const auto flow = run_flow_level(w, make);
  EXPECT_GT(packet.violations, 0u);
  EXPECT_GT(flow.violations, 0u);
  // The two audits observe different instants (probes additionally see
  // transient intra-batch pool states; packets see everything in between);
  // the verdicts must agree closely, not exactly.
  EXPECT_NEAR(static_cast<double>(packet.violations),
              static_cast<double>(flow.violations),
              static_cast<double>(flow.violations) * 0.15 + 10);
}

TEST(PacketLevelAgreement, DuetVerdictsAgree) {
  const auto w = make_workload(33, 600.0, 15.0);
  const auto make = [](sim::Simulator& sim) {
    return std::make_unique<DuetLoadBalancer>(
        sim, DuetLoadBalancer::Config{
                 .policy = DuetLoadBalancer::MigratePolicy::kPeriodic,
                 .migrate_period = sim::kMinute});
  };
  const auto packet = run_packet_level(w, make);
  const auto flow = run_flow_level(w, make);
  EXPECT_GT(packet.violations, 0u);
  EXPECT_GT(flow.violations, 0u);
  EXPECT_NEAR(static_cast<double>(packet.violations),
              static_cast<double>(flow.violations),
              static_cast<double>(flow.violations) * 0.5 + 10);
}

TEST(PacketLevelAgreement, SlbCleanAtPacketGranularity) {
  const auto w = make_workload(34, 600.0, 25.0);
  const auto make = [](sim::Simulator&) {
    return std::make_unique<SoftwareLoadBalancer>();
  };
  const auto packet = run_packet_level(w, make);
  EXPECT_EQ(packet.violations, 0u);
}

TEST(PacketLevelRunner, CountsPacketsAndFlows) {
  Workload w;
  workload::Flow flow;
  flow.tuple = net::FiveTuple{{net::IpAddress::v4(0x0B000001), 1234}, vip_ep(),
                              net::Protocol::kTcp};
  flow.start = 0;
  flow.end = sim::kSecond;
  w.flows.push_back(flow);
  sim::Simulator sim;
  SoftwareLoadBalancer slb;
  slb.add_vip(vip_ep(), make_dips(4));
  PacketLevelRunner runner(sim, slb,
                           {.packet_interval = 100 * sim::kMillisecond});
  const auto stats = runner.run(w.flows, {});
  EXPECT_EQ(stats.flows, 1u);
  // SYN + 9 mid-flow packets + FIN.
  EXPECT_EQ(stats.packets, 11u);
  EXPECT_EQ(stats.violations, 0u);
}

}  // namespace
}  // namespace silkroad::lb
