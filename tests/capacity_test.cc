// SRAM capacity ledger tests (DESIGN.md §15).
//
// Three concerns: (1) reconciliation — the live ledger, the switch's
// MemoryUsage auditor view, and the static Fig. 12 formulas in
// core/memory_model.h must agree on the ConnTable and TransitTable bytes,
// so the runtime telemetry can never drift from the sizing math; (2) the
// alarm state machine — hysteresis yields exactly one trace event per true
// threshold crossing, never a flap; (3) the exhaustion forecast and the
// rendered /capacity(.json) documents.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/memory_model.h"
#include "core/silkroad_switch.h"
#include "obs/capacity.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace silkroad {
namespace {

net::Packet syn_packet(const net::Endpoint& vip, std::uint32_t client) {
  net::Packet packet;
  packet.flow = {{net::IpAddress::v4(0x0a000000u + client), 40000},
                 vip,
                 net::Protocol::kTcp};
  packet.syn = true;
  packet.size_bytes = 64;
  return packet;
}

std::vector<net::Endpoint> four_dips() {
  return {*net::Endpoint::parse("10.0.0.1:8080"),
          *net::Endpoint::parse("10.0.0.2:8080"),
          *net::Endpoint::parse("10.0.0.3:8080"),
          *net::Endpoint::parse("10.0.0.4:8080")};
}

double gauge(const obs::Snapshot& snap, const char* name,
             const std::string& labels) {
  return snap.value_of(name, labels, -1.0);
}

// ---------------------------------------------------------------------------
// Reconciliation: ledger == MemoryUsage auditor == Fig. 12 formulas
// ---------------------------------------------------------------------------

TEST(CapacityLedger, ReconcilesWithStaticModels) {
  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(100'000);
  core::SilkRoadSwitch sw(sim, config);

  const net::Endpoint vip = *net::Endpoint::parse("20.0.0.1:80");
  sw.add_vip(vip, four_dips());
  for (std::uint32_t client = 0; client < 512; ++client) {
    sw.process_packet(syn_packet(vip, client));
  }
  sim.run();  // drain learning + insertion so every entry is installed

  const auto usage = sw.memory_usage();
  const obs::Snapshot snap = sw.metrics().snapshot();
  const std::string conn = R"(table="conn_table")";
  const std::string transit = R"(table="transit_table")";
  const std::string pool = R"(table="dip_pool_table")";

  // Live ledger vs the switch's own MemoryUsage auditor.
  EXPECT_EQ(gauge(snap, "silkroad_capacity_used_bytes", conn),
            static_cast<double>(usage.conn_table_bytes));
  EXPECT_EQ(gauge(snap, "silkroad_capacity_used_bytes", pool),
            static_cast<double>(usage.dip_pool_table_bytes));
  EXPECT_EQ(gauge(snap, "silkroad_capacity_used_bytes", transit),
            static_cast<double>(usage.transit_table_bytes));

  // Live ledger vs the Fig. 12 static formulas: the provisioned ConnTable
  // SRAM equals conn_table_bytes() at the paper's 16b digest + 6b version
  // entry, and the transit bloom is the paper's 256 B constant.
  const auto& table = sw.conn_table();
  const core::SilkRoadFootprint fig12 = core::silkroad_footprint(
      table.capacity(), /*dips=*/4, /*versions=*/1, /*ipv6=*/false);
  EXPECT_EQ(static_cast<std::size_t>(
                gauge(snap, "silkroad_capacity_used_bytes", conn)),
            fig12.conn_table);
  EXPECT_EQ(static_cast<std::size_t>(
                gauge(snap, "silkroad_capacity_used_bytes", transit)),
            fig12.transit_table);

  // Entry accounting: used == installed cuckoo entries, headroom closes the
  // gap to capacity, occupancy is their ratio.
  EXPECT_EQ(gauge(snap, "silkroad_capacity_used_entries", conn),
            static_cast<double>(table.size()));
  EXPECT_EQ(gauge(snap, "silkroad_capacity_headroom_entries", conn),
            static_cast<double>(table.capacity() - table.size()));
  EXPECT_NEAR(gauge(snap, "silkroad_capacity_occupancy", conn),
              static_cast<double>(table.size()) /
                  static_cast<double>(table.capacity()),
              1e-9);
  EXPECT_GT(table.size(), 0u);
}

TEST(CapacityLedger, PerVipAttributionSumsToConnTable) {
  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(100'000);
  core::SilkRoadSwitch sw(sim, config);

  const net::Endpoint vip_a = *net::Endpoint::parse("20.0.0.1:80");
  const net::Endpoint vip_b = *net::Endpoint::parse("20.0.0.2:443");
  sw.add_vip(vip_a, four_dips());
  sw.add_vip(vip_b, {*net::Endpoint::parse("10.0.1.1:8443"),
                     *net::Endpoint::parse("10.0.1.2:8443")});
  for (std::uint32_t client = 0; client < 300; ++client) {
    sw.process_packet(syn_packet(vip_a, client));
  }
  for (std::uint32_t client = 1000; client < 1200; ++client) {
    sw.process_packet(syn_packet(vip_b, client));
  }
  sim.run();

  const obs::Snapshot snap = sw.metrics().snapshot();
  const double a = gauge(snap, "silkroad_capacity_vip_entries",
                         R"(vip="20.0.0.1:80")");
  const double b = gauge(snap, "silkroad_capacity_vip_entries",
                         R"(vip="20.0.0.2:443")");
  EXPECT_GT(a, 0);
  EXPECT_GT(b, 0);
  EXPECT_EQ(a + b, static_cast<double>(sw.conn_table().size()));

  // Attributed bytes: each VIP owns its entries' word share plus its own
  // pool table; both probes must be live (nonzero once entries exist).
  EXPECT_GT(gauge(snap, "silkroad_capacity_vip_bytes",
                  R"(vip="20.0.0.1:80")"),
            0);
  EXPECT_GT(gauge(snap, "silkroad_capacity_vip_bytes",
                  R"(vip="20.0.0.2:443")"),
            0);
}

// ---------------------------------------------------------------------------
// Alarm hysteresis: exactly one trace event per true crossing
// ---------------------------------------------------------------------------

struct AlarmCounts {
  std::uint64_t raises = 0;
  std::uint64_t clears = 0;
};

AlarmCounts count_alarm_events(const obs::TraceRing& ring) {
  AlarmCounts counts;
  for (const auto& event : ring.events()) {
    if (event.kind == obs::TraceEventKind::kCapacityAlarmRaise) {
      ++counts.raises;
    } else if (event.kind == obs::TraceEventKind::kCapacityAlarmClear) {
      ++counts.clears;
    }
  }
  return counts;
}

TEST(CapacityLedger, AlarmHysteresisOneEventPerCrossing) {
  obs::TraceRing ring(256);
  obs::ResourceLedger ledger;
  ledger.bind_trace(&ring);

  double occ = 0;
  obs::ResourceLedger::TableProbe probe;
  probe.entries = [&occ] { return static_cast<std::uint64_t>(occ * 1000); };
  probe.bytes = [] { return std::uint64_t{0}; };
  probe.occupancy = [&occ] { return occ; };
  ledger.register_table("t", probe);

  using Level = obs::CapacityLevel;
  const std::vector<std::tuple<double, Level, std::uint64_t>> steps = {
      // occupancy, expected level after poll, expected TOTAL transitions
      {0.50, Level::kOk, 0},        // below every threshold
      {0.71, Level::kWatch, 1},     // crosses watch_enter (0.70)
      {0.69, Level::kWatch, 1},     // inside band (> watch_exit 0.65): no flap
      {0.66, Level::kWatch, 1},     // still inside the band
      {0.65, Level::kOk, 2},        // at watch_exit: one clear
      {0.96, Level::kCritical, 5},  // jumps all three enter thresholds
      {0.91, Level::kCritical, 5},  // above critical_exit (0.90): holds
      {0.90, Level::kPressure, 6},  // one clear
      {0.78, Level::kWatch, 7},     // below pressure_exit, above watch_exit
      {0.10, Level::kOk, 8},        // final clear
  };
  sim::Time now = 0;
  for (const auto& [occupancy, level, transitions] : steps) {
    occ = occupancy;
    now += sim::kSecond;
    ledger.poll(now);
    EXPECT_EQ(ledger.level("t"), level) << "at occupancy " << occupancy;
    EXPECT_EQ(ledger.total_transitions(), transitions)
        << "at occupancy " << occupancy;
  }
  EXPECT_EQ(ledger.transitions("t"), 8u);
  EXPECT_EQ(ledger.worst_level(), Level::kOk);

  // The trace ring saw exactly one event per transition: 4 raises (watch,
  // then watch+pressure+critical) and 4 clears.
  const AlarmCounts counts = count_alarm_events(ring);
  EXPECT_EQ(counts.raises, 4u);
  EXPECT_EQ(counts.clears, 4u);

  // Each event's arg0 is the level AFTER the crossing; the first raise
  // lands on kWatch.
  for (const auto& event : ring.events()) {
    if (event.kind == obs::TraceEventKind::kCapacityAlarmRaise) {
      EXPECT_EQ(event.arg0, static_cast<std::uint64_t>(Level::kWatch));
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Exhaustion forecast
// ---------------------------------------------------------------------------

TEST(CapacityLedger, ForecastProjectsLinearFill) {
  std::vector<std::pair<sim::Time, double>> points;
  for (int i = 0; i < 10; ++i) {
    points.emplace_back(static_cast<sim::Time>(i) * sim::kSecond,
                        0.20 + 0.05 * i);
  }
  const auto forecast = obs::ResourceLedger::linear_forecast(points, 8);
  ASSERT_TRUE(forecast.valid);
  EXPECT_NEAR(forecast.occupancy, 0.65, 1e-9);
  EXPECT_NEAR(forecast.slope_per_s, 0.05, 1e-9);
  EXPECT_NEAR(forecast.seconds_to_full, (1.0 - 0.65) / 0.05, 1e-6);
}

TEST(CapacityLedger, ForecastFlatAndShortWindows) {
  std::vector<std::pair<sim::Time, double>> flat;
  for (int i = 0; i < 10; ++i) {
    flat.emplace_back(static_cast<sim::Time>(i) * sim::kSecond, 0.40);
  }
  const auto steady = obs::ResourceLedger::linear_forecast(flat, 8);
  ASSERT_TRUE(steady.valid);
  EXPECT_NEAR(steady.slope_per_s, 0.0, 1e-9);
  EXPECT_EQ(steady.seconds_to_full, -1);  // not filling

  const std::vector<std::pair<sim::Time, double>> few = {
      {0, 0.1}, {sim::kSecond, 0.2}};
  EXPECT_FALSE(obs::ResourceLedger::linear_forecast(few, 8).valid);
}

TEST(CapacityLedger, ForecastThroughPolledHistory) {
  obs::ResourceLedger::Options options;
  options.forecast_min_samples = 4;
  obs::ResourceLedger ledger(options);

  double occ = 0;
  obs::ResourceLedger::TableProbe probe;
  probe.entries = [] { return std::uint64_t{0}; };
  probe.bytes = [] { return std::uint64_t{0}; };
  probe.occupancy = [&occ] { return occ; };
  ledger.register_table("ramp", probe);

  for (int i = 0; i < 8; ++i) {
    occ = 0.10 * i;
    ledger.poll(static_cast<sim::Time>(i) * sim::kSecond);
  }
  const auto forecast = ledger.forecast("ramp");
  ASSERT_TRUE(forecast.valid);
  EXPECT_NEAR(forecast.slope_per_s, 0.10, 1e-9);
  EXPECT_NEAR(forecast.seconds_to_full, (1.0 - 0.70) / 0.10, 1e-6);

  // Re-polling the same timestamp replaces the sample instead of duplicating
  // the time point (keeps the regression well-conditioned).
  occ = 0.75;
  ledger.poll(7 * sim::kSecond);
  const auto updated = ledger.forecast("ramp");
  ASSERT_TRUE(updated.valid);
  EXPECT_NEAR(updated.occupancy, 0.75, 1e-9);
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

TEST(CapacityLedger, RendersTextAndJson) {
  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(100'000);
  core::SilkRoadSwitch sw(sim, config);
  sw.add_vip(*net::Endpoint::parse("20.0.0.1:80"), four_dips());
  for (std::uint32_t client = 0; client < 64; ++client) {
    sw.process_packet(syn_packet(*net::Endpoint::parse("20.0.0.1:80"),
                                 client));
  }
  sim.run();

  const std::string text = sw.capacity().to_text();
  EXPECT_NE(text.find("silkroad capacity ledger"), std::string::npos);
  EXPECT_NE(text.find("conn_table"), std::string::npos);
  EXPECT_NE(text.find("per-VIP attribution"), std::string::npos);
  EXPECT_NE(text.find("20.0.0.1:80"), std::string::npos);

  const std::string json = sw.capacity().to_json();
  for (const char* needle :
       {R"("name":"conn_table")", R"("name":"transit_table")",
        R"("name":"learning_filter")", R"("name":"dip_pool_table")",
        R"("vip":"20.0.0.1:80")", R"("alarm_transitions_total")",
        R"("forecast")", R"("worst_level")"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  // Structurally balanced (no JSON parser in-tree; brace/bracket discipline
  // plus the needle checks pin the schema).
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(json.back(), '\n');

  // The debug report embeds the same ledger table.
  EXPECT_NE(sw.debug_report().find("silkroad capacity ledger"),
            std::string::npos);
}

}  // namespace
}  // namespace silkroad
