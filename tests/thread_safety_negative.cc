// Negative fixture for the clang thread-safety gate (DESIGN.md §13).
//
// This translation unit touches an SR_GUARDED_BY field without holding its
// mutex. It is registered EXCLUDE_FROM_ALL: a normal build never compiles it,
// and scripts/thread_safety_selftest.sh builds this target expecting the
// compiler to REJECT it under -Werror=thread-safety-analysis. If this file
// ever compiles with SILKROAD_THREAD_SAFETY=ON, the annotation shim has
// silently stopped expanding and the whole gate is vacuous.
#include <cstdint>

#include "check/thread_annotations.h"

namespace silkroad {

class Counter {
 public:
  // BUG (deliberate): writes value_ without acquiring mu_. Clang must report
  // "writing variable 'value_' requires holding mutex 'mu_' exclusively".
  void increment() { ++value_; }

  std::uint64_t value() const {
    const sr::MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable sr::Mutex mu_;
  std::uint64_t value_ SR_GUARDED_BY(mu_) = 0;
};

}  // namespace silkroad

int main() {
  silkroad::Counter counter;
  counter.increment();
  return counter.value() == 1 ? 0 : 1;
}
