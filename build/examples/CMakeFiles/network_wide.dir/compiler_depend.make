# Empty compiler generated dependencies file for network_wide.
# This may be replaced when dependencies are built.
