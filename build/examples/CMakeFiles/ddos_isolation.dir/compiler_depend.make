# Empty compiler generated dependencies file for ddos_isolation.
# This may be replaced when dependencies are built.
