file(REMOVE_RECURSE
  "CMakeFiles/ddos_isolation.dir/ddos_isolation.cpp.o"
  "CMakeFiles/ddos_isolation.dir/ddos_isolation.cpp.o.d"
  "ddos_isolation"
  "ddos_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
