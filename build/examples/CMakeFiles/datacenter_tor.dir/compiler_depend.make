# Empty compiler generated dependencies file for datacenter_tor.
# This may be replaced when dependencies are built.
