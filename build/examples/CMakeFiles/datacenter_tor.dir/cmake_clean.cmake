file(REMOVE_RECURSE
  "CMakeFiles/datacenter_tor.dir/datacenter_tor.cpp.o"
  "CMakeFiles/datacenter_tor.dir/datacenter_tor.cpp.o.d"
  "datacenter_tor"
  "datacenter_tor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_tor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
