# Empty compiler generated dependencies file for silkroad_lb.
# This may be replaced when dependencies are built.
