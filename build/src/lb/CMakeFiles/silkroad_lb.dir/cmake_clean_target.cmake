file(REMOVE_RECURSE
  "libsilkroad_lb.a"
)
