
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lb/dip_pool.cc" "src/lb/CMakeFiles/silkroad_lb.dir/dip_pool.cc.o" "gcc" "src/lb/CMakeFiles/silkroad_lb.dir/dip_pool.cc.o.d"
  "/root/repo/src/lb/duet.cc" "src/lb/CMakeFiles/silkroad_lb.dir/duet.cc.o" "gcc" "src/lb/CMakeFiles/silkroad_lb.dir/duet.cc.o.d"
  "/root/repo/src/lb/hash_ring.cc" "src/lb/CMakeFiles/silkroad_lb.dir/hash_ring.cc.o" "gcc" "src/lb/CMakeFiles/silkroad_lb.dir/hash_ring.cc.o.d"
  "/root/repo/src/lb/maglev.cc" "src/lb/CMakeFiles/silkroad_lb.dir/maglev.cc.o" "gcc" "src/lb/CMakeFiles/silkroad_lb.dir/maglev.cc.o.d"
  "/root/repo/src/lb/packet_level.cc" "src/lb/CMakeFiles/silkroad_lb.dir/packet_level.cc.o" "gcc" "src/lb/CMakeFiles/silkroad_lb.dir/packet_level.cc.o.d"
  "/root/repo/src/lb/pcc_tracker.cc" "src/lb/CMakeFiles/silkroad_lb.dir/pcc_tracker.cc.o" "gcc" "src/lb/CMakeFiles/silkroad_lb.dir/pcc_tracker.cc.o.d"
  "/root/repo/src/lb/scenario.cc" "src/lb/CMakeFiles/silkroad_lb.dir/scenario.cc.o" "gcc" "src/lb/CMakeFiles/silkroad_lb.dir/scenario.cc.o.d"
  "/root/repo/src/lb/slb.cc" "src/lb/CMakeFiles/silkroad_lb.dir/slb.cc.o" "gcc" "src/lb/CMakeFiles/silkroad_lb.dir/slb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/silkroad_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/silkroad_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/silkroad_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
