file(REMOVE_RECURSE
  "CMakeFiles/silkroad_lb.dir/dip_pool.cc.o"
  "CMakeFiles/silkroad_lb.dir/dip_pool.cc.o.d"
  "CMakeFiles/silkroad_lb.dir/duet.cc.o"
  "CMakeFiles/silkroad_lb.dir/duet.cc.o.d"
  "CMakeFiles/silkroad_lb.dir/hash_ring.cc.o"
  "CMakeFiles/silkroad_lb.dir/hash_ring.cc.o.d"
  "CMakeFiles/silkroad_lb.dir/maglev.cc.o"
  "CMakeFiles/silkroad_lb.dir/maglev.cc.o.d"
  "CMakeFiles/silkroad_lb.dir/packet_level.cc.o"
  "CMakeFiles/silkroad_lb.dir/packet_level.cc.o.d"
  "CMakeFiles/silkroad_lb.dir/pcc_tracker.cc.o"
  "CMakeFiles/silkroad_lb.dir/pcc_tracker.cc.o.d"
  "CMakeFiles/silkroad_lb.dir/scenario.cc.o"
  "CMakeFiles/silkroad_lb.dir/scenario.cc.o.d"
  "CMakeFiles/silkroad_lb.dir/slb.cc.o"
  "CMakeFiles/silkroad_lb.dir/slb.cc.o.d"
  "libsilkroad_lb.a"
  "libsilkroad_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silkroad_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
