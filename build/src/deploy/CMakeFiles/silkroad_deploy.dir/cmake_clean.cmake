file(REMOVE_RECURSE
  "CMakeFiles/silkroad_deploy.dir/fleet.cc.o"
  "CMakeFiles/silkroad_deploy.dir/fleet.cc.o.d"
  "CMakeFiles/silkroad_deploy.dir/topology.cc.o"
  "CMakeFiles/silkroad_deploy.dir/topology.cc.o.d"
  "CMakeFiles/silkroad_deploy.dir/vip_assignment.cc.o"
  "CMakeFiles/silkroad_deploy.dir/vip_assignment.cc.o.d"
  "libsilkroad_deploy.a"
  "libsilkroad_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silkroad_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
