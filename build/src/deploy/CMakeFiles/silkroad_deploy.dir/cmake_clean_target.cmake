file(REMOVE_RECURSE
  "libsilkroad_deploy.a"
)
