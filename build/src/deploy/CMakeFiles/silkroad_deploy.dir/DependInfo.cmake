
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deploy/fleet.cc" "src/deploy/CMakeFiles/silkroad_deploy.dir/fleet.cc.o" "gcc" "src/deploy/CMakeFiles/silkroad_deploy.dir/fleet.cc.o.d"
  "/root/repo/src/deploy/topology.cc" "src/deploy/CMakeFiles/silkroad_deploy.dir/topology.cc.o" "gcc" "src/deploy/CMakeFiles/silkroad_deploy.dir/topology.cc.o.d"
  "/root/repo/src/deploy/vip_assignment.cc" "src/deploy/CMakeFiles/silkroad_deploy.dir/vip_assignment.cc.o" "gcc" "src/deploy/CMakeFiles/silkroad_deploy.dir/vip_assignment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/silkroad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/asic/CMakeFiles/silkroad_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/silkroad_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/silkroad_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/silkroad_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/silkroad_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
