# Empty compiler generated dependencies file for silkroad_deploy.
# This may be replaced when dependencies are built.
