file(REMOVE_RECURSE
  "libsilkroad_asic.a"
)
