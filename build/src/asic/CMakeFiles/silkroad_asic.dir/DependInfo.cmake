
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asic/cuckoo_table.cc" "src/asic/CMakeFiles/silkroad_asic.dir/cuckoo_table.cc.o" "gcc" "src/asic/CMakeFiles/silkroad_asic.dir/cuckoo_table.cc.o.d"
  "/root/repo/src/asic/learning_filter.cc" "src/asic/CMakeFiles/silkroad_asic.dir/learning_filter.cc.o" "gcc" "src/asic/CMakeFiles/silkroad_asic.dir/learning_filter.cc.o.d"
  "/root/repo/src/asic/pipeline.cc" "src/asic/CMakeFiles/silkroad_asic.dir/pipeline.cc.o" "gcc" "src/asic/CMakeFiles/silkroad_asic.dir/pipeline.cc.o.d"
  "/root/repo/src/asic/resources.cc" "src/asic/CMakeFiles/silkroad_asic.dir/resources.cc.o" "gcc" "src/asic/CMakeFiles/silkroad_asic.dir/resources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/silkroad_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/silkroad_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
