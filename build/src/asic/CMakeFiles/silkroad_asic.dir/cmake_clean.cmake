file(REMOVE_RECURSE
  "CMakeFiles/silkroad_asic.dir/cuckoo_table.cc.o"
  "CMakeFiles/silkroad_asic.dir/cuckoo_table.cc.o.d"
  "CMakeFiles/silkroad_asic.dir/learning_filter.cc.o"
  "CMakeFiles/silkroad_asic.dir/learning_filter.cc.o.d"
  "CMakeFiles/silkroad_asic.dir/pipeline.cc.o"
  "CMakeFiles/silkroad_asic.dir/pipeline.cc.o.d"
  "CMakeFiles/silkroad_asic.dir/resources.cc.o"
  "CMakeFiles/silkroad_asic.dir/resources.cc.o.d"
  "libsilkroad_asic.a"
  "libsilkroad_asic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silkroad_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
