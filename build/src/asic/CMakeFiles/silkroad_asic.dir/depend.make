# Empty dependencies file for silkroad_asic.
# This may be replaced when dependencies are built.
