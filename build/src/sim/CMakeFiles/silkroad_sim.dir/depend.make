# Empty dependencies file for silkroad_sim.
# This may be replaced when dependencies are built.
