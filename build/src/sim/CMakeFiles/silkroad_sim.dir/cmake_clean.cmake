file(REMOVE_RECURSE
  "CMakeFiles/silkroad_sim.dir/distributions.cc.o"
  "CMakeFiles/silkroad_sim.dir/distributions.cc.o.d"
  "CMakeFiles/silkroad_sim.dir/event_queue.cc.o"
  "CMakeFiles/silkroad_sim.dir/event_queue.cc.o.d"
  "libsilkroad_sim.a"
  "libsilkroad_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silkroad_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
