file(REMOVE_RECURSE
  "libsilkroad_sim.a"
)
