file(REMOVE_RECURSE
  "CMakeFiles/silkroad_core.dir/health_checker.cc.o"
  "CMakeFiles/silkroad_core.dir/health_checker.cc.o.d"
  "CMakeFiles/silkroad_core.dir/memory_model.cc.o"
  "CMakeFiles/silkroad_core.dir/memory_model.cc.o.d"
  "CMakeFiles/silkroad_core.dir/silkroad_switch.cc.o"
  "CMakeFiles/silkroad_core.dir/silkroad_switch.cc.o.d"
  "CMakeFiles/silkroad_core.dir/version_manager.cc.o"
  "CMakeFiles/silkroad_core.dir/version_manager.cc.o.d"
  "libsilkroad_core.a"
  "libsilkroad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silkroad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
