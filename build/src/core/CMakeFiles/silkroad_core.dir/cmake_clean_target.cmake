file(REMOVE_RECURSE
  "libsilkroad_core.a"
)
