# Empty dependencies file for silkroad_core.
# This may be replaced when dependencies are built.
