file(REMOVE_RECURSE
  "CMakeFiles/silkroad_net.dir/endpoint.cc.o"
  "CMakeFiles/silkroad_net.dir/endpoint.cc.o.d"
  "CMakeFiles/silkroad_net.dir/hash.cc.o"
  "CMakeFiles/silkroad_net.dir/hash.cc.o.d"
  "CMakeFiles/silkroad_net.dir/ip_address.cc.o"
  "CMakeFiles/silkroad_net.dir/ip_address.cc.o.d"
  "libsilkroad_net.a"
  "libsilkroad_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silkroad_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
