# Empty compiler generated dependencies file for silkroad_net.
# This may be replaced when dependencies are built.
