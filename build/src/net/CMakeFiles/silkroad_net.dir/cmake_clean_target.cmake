file(REMOVE_RECURSE
  "libsilkroad_net.a"
)
