file(REMOVE_RECURSE
  "CMakeFiles/silkroad_workload.dir/cluster_model.cc.o"
  "CMakeFiles/silkroad_workload.dir/cluster_model.cc.o.d"
  "CMakeFiles/silkroad_workload.dir/flow_gen.cc.o"
  "CMakeFiles/silkroad_workload.dir/flow_gen.cc.o.d"
  "CMakeFiles/silkroad_workload.dir/trace.cc.o"
  "CMakeFiles/silkroad_workload.dir/trace.cc.o.d"
  "CMakeFiles/silkroad_workload.dir/update_gen.cc.o"
  "CMakeFiles/silkroad_workload.dir/update_gen.cc.o.d"
  "libsilkroad_workload.a"
  "libsilkroad_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silkroad_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
