# Empty compiler generated dependencies file for silkroad_workload.
# This may be replaced when dependencies are built.
