file(REMOVE_RECURSE
  "libsilkroad_workload.a"
)
