file(REMOVE_RECURSE
  "CMakeFiles/fig13_slb_replacement.dir/fig13_slb_replacement.cc.o"
  "CMakeFiles/fig13_slb_replacement.dir/fig13_slb_replacement.cc.o.d"
  "fig13_slb_replacement"
  "fig13_slb_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_slb_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
