# Empty compiler generated dependencies file for fig13_slb_replacement.
# This may be replaced when dependencies are built.
