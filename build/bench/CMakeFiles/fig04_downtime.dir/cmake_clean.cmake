file(REMOVE_RECURSE
  "CMakeFiles/fig04_downtime.dir/fig04_downtime.cc.o"
  "CMakeFiles/fig04_downtime.dir/fig04_downtime.cc.o.d"
  "fig04_downtime"
  "fig04_downtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_downtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
