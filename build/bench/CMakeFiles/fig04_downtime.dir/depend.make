# Empty dependencies file for fig04_downtime.
# This may be replaced when dependencies are built.
