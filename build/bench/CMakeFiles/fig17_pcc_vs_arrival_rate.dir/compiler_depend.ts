# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig17_pcc_vs_arrival_rate.
