# Empty dependencies file for fig17_pcc_vs_arrival_rate.
# This may be replaced when dependencies are built.
