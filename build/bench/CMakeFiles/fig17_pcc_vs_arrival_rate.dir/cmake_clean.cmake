file(REMOVE_RECURSE
  "CMakeFiles/fig17_pcc_vs_arrival_rate.dir/fig17_pcc_vs_arrival_rate.cc.o"
  "CMakeFiles/fig17_pcc_vs_arrival_rate.dir/fig17_pcc_vs_arrival_rate.cc.o.d"
  "fig17_pcc_vs_arrival_rate"
  "fig17_pcc_vs_arrival_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_pcc_vs_arrival_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
