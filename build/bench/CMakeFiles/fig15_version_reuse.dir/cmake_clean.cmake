file(REMOVE_RECURSE
  "CMakeFiles/fig15_version_reuse.dir/fig15_version_reuse.cc.o"
  "CMakeFiles/fig15_version_reuse.dir/fig15_version_reuse.cc.o.d"
  "fig15_version_reuse"
  "fig15_version_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_version_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
