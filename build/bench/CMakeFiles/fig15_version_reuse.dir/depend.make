# Empty dependencies file for fig15_version_reuse.
# This may be replaced when dependencies are built.
