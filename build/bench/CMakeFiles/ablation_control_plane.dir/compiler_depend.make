# Empty compiler generated dependencies file for ablation_control_plane.
# This may be replaced when dependencies are built.
