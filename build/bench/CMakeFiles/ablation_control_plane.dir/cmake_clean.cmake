file(REMOVE_RECURSE
  "CMakeFiles/ablation_control_plane.dir/ablation_control_plane.cc.o"
  "CMakeFiles/ablation_control_plane.dir/ablation_control_plane.cc.o.d"
  "ablation_control_plane"
  "ablation_control_plane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_control_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
