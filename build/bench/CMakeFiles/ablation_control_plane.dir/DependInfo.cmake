
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_control_plane.cc" "bench/CMakeFiles/ablation_control_plane.dir/ablation_control_plane.cc.o" "gcc" "bench/CMakeFiles/ablation_control_plane.dir/ablation_control_plane.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/silkroad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/deploy/CMakeFiles/silkroad_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/silkroad_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/silkroad_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/asic/CMakeFiles/silkroad_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/silkroad_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/silkroad_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
