# Empty dependencies file for hash_churn.
# This may be replaced when dependencies are built.
