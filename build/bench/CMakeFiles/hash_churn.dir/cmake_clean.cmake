file(REMOVE_RECURSE
  "CMakeFiles/hash_churn.dir/hash_churn.cc.o"
  "CMakeFiles/hash_churn.dir/hash_churn.cc.o.d"
  "hash_churn"
  "hash_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
