file(REMOVE_RECURSE
  "CMakeFiles/table1_sram_trend.dir/table1_sram_trend.cc.o"
  "CMakeFiles/table1_sram_trend.dir/table1_sram_trend.cc.o.d"
  "table1_sram_trend"
  "table1_sram_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sram_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
