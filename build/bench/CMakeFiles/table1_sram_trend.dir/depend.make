# Empty dependencies file for table1_sram_trend.
# This may be replaced when dependencies are built.
