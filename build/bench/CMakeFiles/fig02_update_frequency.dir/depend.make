# Empty dependencies file for fig02_update_frequency.
# This may be replaced when dependencies are built.
