file(REMOVE_RECURSE
  "CMakeFiles/fig05_slb_dilemma.dir/fig05_slb_dilemma.cc.o"
  "CMakeFiles/fig05_slb_dilemma.dir/fig05_slb_dilemma.cc.o.d"
  "fig05_slb_dilemma"
  "fig05_slb_dilemma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_slb_dilemma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
