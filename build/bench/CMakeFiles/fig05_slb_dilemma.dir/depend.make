# Empty dependencies file for fig05_slb_dilemma.
# This may be replaced when dependencies are built.
