# Empty dependencies file for latency_model.
# This may be replaced when dependencies are built.
