file(REMOVE_RECURSE
  "CMakeFiles/latency_model.dir/latency_model.cc.o"
  "CMakeFiles/latency_model.dir/latency_model.cc.o.d"
  "latency_model"
  "latency_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
