file(REMOVE_RECURSE
  "CMakeFiles/fig06_active_connections.dir/fig06_active_connections.cc.o"
  "CMakeFiles/fig06_active_connections.dir/fig06_active_connections.cc.o.d"
  "fig06_active_connections"
  "fig06_active_connections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_active_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
