# Empty dependencies file for fig06_active_connections.
# This may be replaced when dependencies are built.
