# Empty dependencies file for fig18_transit_table_size.
# This may be replaced when dependencies are built.
