# Empty dependencies file for fig03_update_root_causes.
# This may be replaced when dependencies are built.
