file(REMOVE_RECURSE
  "CMakeFiles/fig03_update_root_causes.dir/fig03_update_root_causes.cc.o"
  "CMakeFiles/fig03_update_root_causes.dir/fig03_update_root_causes.cc.o.d"
  "fig03_update_root_causes"
  "fig03_update_root_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_update_root_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
