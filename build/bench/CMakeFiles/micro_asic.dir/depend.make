# Empty dependencies file for micro_asic.
# This may be replaced when dependencies are built.
