file(REMOVE_RECURSE
  "CMakeFiles/micro_asic.dir/micro_asic.cc.o"
  "CMakeFiles/micro_asic.dir/micro_asic.cc.o.d"
  "micro_asic"
  "micro_asic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
