file(REMOVE_RECURSE
  "CMakeFiles/pipeline_placement.dir/pipeline_placement.cc.o"
  "CMakeFiles/pipeline_placement.dir/pipeline_placement.cc.o.d"
  "pipeline_placement"
  "pipeline_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
