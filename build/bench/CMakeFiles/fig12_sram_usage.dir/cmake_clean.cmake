file(REMOVE_RECURSE
  "CMakeFiles/fig12_sram_usage.dir/fig12_sram_usage.cc.o"
  "CMakeFiles/fig12_sram_usage.dir/fig12_sram_usage.cc.o.d"
  "fig12_sram_usage"
  "fig12_sram_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sram_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
