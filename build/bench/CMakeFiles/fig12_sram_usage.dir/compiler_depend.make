# Empty compiler generated dependencies file for fig12_sram_usage.
# This may be replaced when dependencies are built.
