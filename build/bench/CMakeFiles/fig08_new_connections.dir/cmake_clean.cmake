file(REMOVE_RECURSE
  "CMakeFiles/fig08_new_connections.dir/fig08_new_connections.cc.o"
  "CMakeFiles/fig08_new_connections.dir/fig08_new_connections.cc.o.d"
  "fig08_new_connections"
  "fig08_new_connections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_new_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
