# Empty compiler generated dependencies file for fig08_new_connections.
# This may be replaced when dependencies are built.
