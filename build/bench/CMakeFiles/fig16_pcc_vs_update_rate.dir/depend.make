# Empty dependencies file for fig16_pcc_vs_update_rate.
# This may be replaced when dependencies are built.
