file(REMOVE_RECURSE
  "CMakeFiles/fig16_pcc_vs_update_rate.dir/fig16_pcc_vs_update_rate.cc.o"
  "CMakeFiles/fig16_pcc_vs_update_rate.dir/fig16_pcc_vs_update_rate.cc.o.d"
  "fig16_pcc_vs_update_rate"
  "fig16_pcc_vs_update_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_pcc_vs_update_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
