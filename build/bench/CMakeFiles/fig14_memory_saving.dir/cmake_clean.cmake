file(REMOVE_RECURSE
  "CMakeFiles/fig14_memory_saving.dir/fig14_memory_saving.cc.o"
  "CMakeFiles/fig14_memory_saving.dir/fig14_memory_saving.cc.o.d"
  "fig14_memory_saving"
  "fig14_memory_saving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_memory_saving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
