# Empty dependencies file for fig14_memory_saving.
# This may be replaced when dependencies are built.
