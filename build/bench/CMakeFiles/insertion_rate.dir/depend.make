# Empty dependencies file for insertion_rate.
# This may be replaced when dependencies are built.
