file(REMOVE_RECURSE
  "CMakeFiles/insertion_rate.dir/insertion_rate.cc.o"
  "CMakeFiles/insertion_rate.dir/insertion_rate.cc.o.d"
  "insertion_rate"
  "insertion_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insertion_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
