file(REMOVE_RECURSE
  "CMakeFiles/meter_accuracy.dir/meter_accuracy.cc.o"
  "CMakeFiles/meter_accuracy.dir/meter_accuracy.cc.o.d"
  "meter_accuracy"
  "meter_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meter_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
