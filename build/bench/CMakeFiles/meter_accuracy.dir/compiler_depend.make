# Empty compiler generated dependencies file for meter_accuracy.
# This may be replaced when dependencies are built.
