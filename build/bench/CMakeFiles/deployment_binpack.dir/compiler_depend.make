# Empty compiler generated dependencies file for deployment_binpack.
# This may be replaced when dependencies are built.
