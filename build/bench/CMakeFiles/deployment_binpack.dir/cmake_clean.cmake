file(REMOVE_RECURSE
  "CMakeFiles/deployment_binpack.dir/deployment_binpack.cc.o"
  "CMakeFiles/deployment_binpack.dir/deployment_binpack.cc.o.d"
  "deployment_binpack"
  "deployment_binpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_binpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
