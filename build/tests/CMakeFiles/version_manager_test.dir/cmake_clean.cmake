file(REMOVE_RECURSE
  "CMakeFiles/version_manager_test.dir/version_manager_test.cc.o"
  "CMakeFiles/version_manager_test.dir/version_manager_test.cc.o.d"
  "version_manager_test"
  "version_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
