file(REMOVE_RECURSE
  "CMakeFiles/health_checker_test.dir/health_checker_test.cc.o"
  "CMakeFiles/health_checker_test.dir/health_checker_test.cc.o.d"
  "health_checker_test"
  "health_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/health_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
