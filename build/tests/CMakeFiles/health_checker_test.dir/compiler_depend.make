# Empty compiler generated dependencies file for health_checker_test.
# This may be replaced when dependencies are built.
