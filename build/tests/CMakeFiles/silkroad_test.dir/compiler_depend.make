# Empty compiler generated dependencies file for silkroad_test.
# This may be replaced when dependencies are built.
