file(REMOVE_RECURSE
  "CMakeFiles/silkroad_test.dir/silkroad_test.cc.o"
  "CMakeFiles/silkroad_test.dir/silkroad_test.cc.o.d"
  "silkroad_test"
  "silkroad_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silkroad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
