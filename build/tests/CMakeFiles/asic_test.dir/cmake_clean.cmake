file(REMOVE_RECURSE
  "CMakeFiles/asic_test.dir/asic_test.cc.o"
  "CMakeFiles/asic_test.dir/asic_test.cc.o.d"
  "asic_test"
  "asic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
