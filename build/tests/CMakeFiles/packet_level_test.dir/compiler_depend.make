# Empty compiler generated dependencies file for packet_level_test.
# This may be replaced when dependencies are built.
