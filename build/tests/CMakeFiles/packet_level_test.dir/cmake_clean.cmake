file(REMOVE_RECURSE
  "CMakeFiles/packet_level_test.dir/packet_level_test.cc.o"
  "CMakeFiles/packet_level_test.dir/packet_level_test.cc.o.d"
  "packet_level_test"
  "packet_level_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_level_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
